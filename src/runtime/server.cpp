#include "runtime/server.hpp"

#include <algorithm>

#include "net/medium.hpp"
#include "sim/eventloop.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"

namespace nol::runtime {

// ---------------------------------------------------------------------------
// PageCache
// ---------------------------------------------------------------------------

const uint8_t *
PageCache::lookup(const sim::PageDigest &digest)
{
    auto it = entries_.find(digest);
    if (it == entries_.end())
        return nullptr;
    lru_.erase(it->second.tick);
    it->second.tick = ++tick_;
    lru_[it->second.tick] = digest;
    return it->second.bytes.data();
}

void
PageCache::insert(const sim::PageDigest &digest, const uint8_t *data)
{
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
        // Content-addressed: same digest, same bytes. Refresh LRU only.
        lru_.erase(it->second.tick);
        it->second.tick = ++tick_;
        lru_[it->second.tick] = digest;
        return;
    }
    while (entries_.size() >= capacity_ && !lru_.empty()) {
        auto oldest = lru_.begin();
        entries_.erase(oldest->second);
        lru_.erase(oldest);
        ++evicted_;
    }
    Entry entry;
    entry.bytes.assign(data, data + sim::kPageSize);
    entry.tick = ++tick_;
    lru_[entry.tick] = digest;
    entries_.emplace(digest, std::move(entry));
    ++inserted_;
}

void
PageCache::invalidate(const sim::PageDigest &digest)
{
    auto it = entries_.find(digest);
    if (it == entries_.end())
        return;
    lru_.erase(it->second.tick);
    entries_.erase(it);
}

// ---------------------------------------------------------------------------
// ServerRuntime
// ---------------------------------------------------------------------------

ServerRuntime::ServerRuntime(const compiler::CompiledProgram &program,
                             AdmissionConfig admission,
                             PageCachePolicy cache_policy)
    : program_(program), admission_(admission), cache_policy_(cache_policy),
      policy_(makeAdmissionPolicy(admission.kind)),
      slots_(admission.maxConcurrentSessions)
{
    NOL_ASSERT(admission_.maxConcurrentSessions > 0,
               "server must admit at least one session");
    NOL_ASSERT(cache_policy_.capacityPages > 0,
               "page cache needs a nonzero capacity");
    if (admission_.autoscale.enabled && admission_.autoscale.maxSessions == 0)
        admission_.autoscale.maxSessions = admission_.maxConcurrentSessions * 4;
}

ServerRuntime::~ServerRuntime() = default;

UvaManager &
ServerRuntime::namespaceFor(uint64_t session_id)
{
    std::unique_ptr<UvaManager> &ns = namespaces_[session_id];
    if (ns == nullptr)
        ns.reset(new UvaManager());
    return *ns;
}

AdmissionResult
ServerRuntime::acquire(sim::Strand &strand, uint64_t session_id,
                       double now_ns, AdmissionRequest request)
{
    NOL_ASSERT(loop_ != nullptr, "admission outside a fleet run");
    AdmissionResult res;
    // Admission is shared state: decide inside an event so concurrent
    // requests serialize in virtual-time order (see eventloop.hpp).
    loop_->schedule(now_ns, [this, &strand, &res, session_id, now_ns,
                             request] {
        bool free_slot = active_ < slots_;
        if (!free_slot && !admission_.legacyFifoPath &&
            admission_.autoscale.enabled &&
            slots_ < admission_.autoscale.maxSessions &&
            static_cast<double>(queue_.size() + 1) >
                admission_.autoscale.queueDepthPerSlot *
                    static_cast<double>(slots_)) {
            // Backlog crossed the growth threshold: provision one more
            // slot and hand it straight to this request.
            ++slots_;
            free_slot = true;
        }
        if (free_slot) {
            ++active_;
            peak_active_ = std::max(peak_active_, active_);
            hold_start_ns_[session_id] = now_ns;
            if (!admission_.legacyFifoPath)
                policy_->onGrant(session_id);
            publishLoad(now_ns);
            res.granted = true;
            loop_->wake(strand, now_ns);
            return;
        }
        Waiter waiter;
        waiter.strand = &strand;
        waiter.result = &res;
        waiter.sessionId = session_id;
        waiter.enqueueNs = now_ns;
        waiter.request = request;
        double deadline = now_ns + admission_.maxQueueWaitSeconds * 1e9;
        waiter.timeoutEvent =
            loop_->schedule(deadline, [this, &strand, &res, deadline] {
                for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                    if (it->strand == &strand) {
                        queue_.erase(it);
                        break;
                    }
                }
                res.granted = false;
                ++admission_denials_;
                publishLoad(deadline);
                loop_->wake(strand, deadline);
            });
        queue_.push_back(waiter);
        ++admission_waits_;
        publishLoad(now_ns);
    });
    double wake_ns = loop_->block(strand);
    res.wakeNs = wake_ns;
    res.waitedNs = wake_ns - now_ns;
    admission_wait_ns_ += res.waitedNs;
    return res;
}

void
ServerRuntime::release(uint64_t session_id, double now_ns)
{
    NOL_ASSERT(loop_ != nullptr, "release outside a fleet run");
    loop_->schedule(now_ns, [this, session_id, now_ns] {
        auto held = hold_start_ns_.find(session_id);
        if (held != hold_start_ns_.end()) {
            hold_total_ns_ += now_ns - held->second;
            ++hold_count_;
            hold_start_ns_.erase(held);
        }
        if (queue_.empty()) {
            NOL_ASSERT(active_ > 0, "slot released but none held");
            --active_;
            maybeShrinkPool();
            publishLoad(now_ns);
            return;
        }
        // The freed slot passes directly to a waiter — the policy's
        // pick — and active_ is unchanged (one out, one in).
        grantSelected(now_ns);
        publishLoad(now_ns);
    });
}

void
ServerRuntime::disconnect(uint64_t session_id, double now_ns)
{
    NOL_ASSERT(loop_ != nullptr, "disconnect outside a fleet run");
    loop_->schedule(now_ns, [this, session_id, now_ns] {
        // Queued? Evict the waiter and deliver a denial, exactly as a
        // queue timeout would, so the session's overflow path runs.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->sessionId != session_id)
                continue;
            Waiter waiter = *it;
            queue_.erase(it);
            loop_->cancel(waiter.timeoutEvent);
            waiter.result->granted = false;
            ++admission_denials_;
            publishLoad(now_ns);
            loop_->wake(*waiter.strand, now_ns);
            return;
        }
        // Holding a slot? Free it; a queued waiter inherits it.
        auto held = hold_start_ns_.find(session_id);
        if (held == hold_start_ns_.end())
            return; // neither queued nor holding: nothing to clean
        hold_total_ns_ += now_ns - held->second;
        ++hold_count_;
        hold_start_ns_.erase(held);
        if (queue_.empty()) {
            NOL_ASSERT(active_ > 0, "slot released but none held");
            --active_;
            maybeShrinkPool();
            publishLoad(now_ns);
            return;
        }
        grantSelected(now_ns);
        publishLoad(now_ns);
    });
}

/** Grant the freed slot to the policy's pick (queue must be nonempty). */
void
ServerRuntime::grantSelected(double now_ns)
{
    size_t index = 0;
    if (!admission_.legacyFifoPath) {
        std::deque<AdmissionTicket> tickets;
        for (const Waiter &waiter : queue_) {
            AdmissionTicket ticket;
            ticket.sessionId = waiter.sessionId;
            ticket.enqueueNs = waiter.enqueueNs;
            ticket.request = waiter.request;
            tickets.push_back(ticket);
        }
        index = policy_->selectNext(tickets);
    }
    NOL_ASSERT(index < queue_.size(), "admission policy picked index %zu "
               "of a %zu-deep queue", index, queue_.size());
    Waiter waiter = queue_[index];
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(index));
    grant(waiter, now_ns);
}

void
ServerRuntime::grant(Waiter waiter, double now_ns)
{
    loop_->cancel(waiter.timeoutEvent);
    hold_start_ns_[waiter.sessionId] = now_ns;
    if (!admission_.legacyFifoPath)
        policy_->onGrant(waiter.sessionId);
    waiter.result->granted = true;
    loop_->wake(*waiter.strand, now_ns);
}

/** Autoscale shrink: retire surplus slots once the backlog is gone. */
void
ServerRuntime::maybeShrinkPool()
{
    if (admission_.legacyFifoPath || !admission_.autoscale.enabled)
        return;
    if (!queue_.empty())
        return;
    uint32_t floor = std::max(admission_.maxConcurrentSessions, active_);
    if (slots_ > floor)
        slots_ = floor;
}

void
ServerRuntime::publishLoad(double now_ns)
{
    load_.slotPool = slots_;
    load_.activeSessions = active_;
    load_.queueDepth = static_cast<uint32_t>(queue_.size());
    load_.completedHolds = hold_count_;
    load_.meanHoldSeconds =
        hold_count_ > 0
            ? (hold_total_ns_ * 1e-9) / static_cast<double>(hold_count_)
            : 0.0;
    if (load_observer_)
        load_observer_(now_ns, load_);
}

// ---------------------------------------------------------------------------
// Page cache + prefetch batching
// ---------------------------------------------------------------------------

PrefetchPlan
ServerRuntime::planPrefetch(sim::Strand &strand, uint64_t session_id,
                            double now_ns, std::vector<PrefetchOffer> offers)
{
    NOL_ASSERT(loop_ != nullptr && cache_active_,
               "cache-aware prefetch outside an active-cache fleet run");
    PrefetchPlan plan;
    loop_->schedule(now_ns, [this, &strand, &plan, session_id, now_ns,
                             offers = std::move(offers)]() mutable {
        if (open_wave_ == 0) {
            uint64_t id = next_wave_++;
            open_wave_ = id;
            waves_[id].id = id;
            double flush_at =
                now_ns + cache_policy_.batchWindowSeconds * 1e9;
            loop_->schedule(flush_at, [this, id, flush_at] {
                flushWave(id, flush_at);
            });
        }
        PrefetchWave &wave = waves_[open_wave_];
        PrefetchWave::Member member;
        member.strand = &strand;
        member.sessionId = session_id;
        member.offers = std::move(offers);
        member.plan = &plan;
        wave.members.push_back(std::move(member));
        ++wave.expected;
    });
    plan.flushNs = loop_->block(strand);
    return plan;
}

void
ServerRuntime::flushWave(uint64_t wave_id, double now_ns)
{
    PrefetchWave &wave = waves_[wave_id];
    wave.flushed = true;
    if (open_wave_ == wave_id)
        open_wave_ = 0;
    ++cache_stats_.prefetchWaves;
    if (wave.members.size() >= 2)
        cache_stats_.batchedSessions += wave.members.size();

    // Assign each unique digest to its first offerer; later offers of
    // the same content — in this wave or while an earlier wave is
    // still in flight — ride that one transfer.
    std::set<sim::PageDigest> assigned_here;
    for (PrefetchWave::Member &member : wave.members) {
        PrefetchPlan &plan = *member.plan;
        plan.waveId = wave_id;
        std::set<uint64_t> depends;
        for (const PrefetchOffer &offer : member.offers) {
            ++cache_stats_.lookups;
            if (cache_->contains(offer.digest)) {
                ++cache_stats_.hitPages;
                plan.cached.push_back(offer);
                continue;
            }
            if (assigned_here.count(offer.digest) != 0) {
                ++cache_stats_.coalescedPages;
                plan.cached.push_back(offer); // own-wave barrier covers it
                continue;
            }
            auto pending = pending_.find(offer.digest);
            if (pending != pending_.end()) {
                ++cache_stats_.coalescedPages;
                plan.cached.push_back(offer);
                depends.insert(pending->second);
                continue;
            }
            ++cache_stats_.missPages;
            plan.carry.push_back(offer);
            assigned_here.insert(offer.digest);
            pending_[offer.digest] = wave_id;
        }
        plan.dependsOnWaves.assign(depends.begin(), depends.end());
    }
    for (PrefetchWave::Member &member : wave.members)
        loop_->wake(*member.strand, now_ns);
}

double
ServerRuntime::finishPrefetch(sim::Strand &strand, uint64_t wave_id,
                              const std::vector<uint64_t> &depends_on,
                              double now_ns,
                              const std::vector<PrefetchOffer> &carried,
                              const sim::PagedMemory &server_mem)
{
    loop_->schedule(now_ns, [this, &strand, wave_id, depends_on, &carried,
                             &server_mem, now_ns] {
        // The strand is blocked, so its server memory is stable: admit
        // the carried bytes now — they are on the server from here on.
        for (const PrefetchOffer &offer : carried) {
            cache_->insert(offer.digest, server_mem.pageData(offer.pageNum));
            pending_.erase(offer.digest);
        }
        waveArrived(wave_id, now_ns);

        WaveWaiter waiter;
        waiter.strand = &strand;
        for (uint64_t dep : {wave_id}) {
            if (!waves_[dep].done)
                waiter.remaining.insert(dep);
        }
        for (uint64_t dep : depends_on) {
            if (!waves_[dep].done)
                waiter.remaining.insert(dep);
        }
        if (waiter.remaining.empty()) {
            loop_->wake(strand, now_ns);
            return;
        }
        wave_waiters_.push_back(std::move(waiter));
    });
    return loop_->block(strand);
}

void
ServerRuntime::abortPrefetch(uint64_t wave_id,
                             const std::vector<PrefetchOffer> &carried,
                             double now_ns)
{
    // Copy the offers: the aborting session is about to unwind its
    // stack into failover, so the reference won't outlive this call.
    std::vector<PrefetchOffer> lost(carried);
    loop_->schedule(now_ns, [this, wave_id, lost = std::move(lost),
                             now_ns] {
        for (const PrefetchOffer &offer : lost) {
            auto it = pending_.find(offer.digest);
            if (it != pending_.end() && it->second == wave_id)
                pending_.erase(it);
        }
        waveArrived(wave_id, now_ns);
    });
}

void
ServerRuntime::waveArrived(uint64_t wave_id, double now_ns)
{
    PrefetchWave &wave = waves_[wave_id];
    ++wave.arrived;
    if (wave.arrived < wave.expected || wave.done)
        return;
    wave.done = true;
    wave.doneNs = now_ns;
    for (auto it = wave_waiters_.begin(); it != wave_waiters_.end();) {
        it->remaining.erase(wave_id);
        if (it->remaining.empty()) {
            loop_->wake(*it->strand, now_ns);
            it = wave_waiters_.erase(it);
        } else {
            ++it;
        }
    }
}

std::vector<uint64_t>
ServerRuntime::collectCachedPages(sim::Strand &strand, double now_ns,
                                  const std::vector<PrefetchOffer> &wanted,
                                  sim::PagedMemory &server_mem)
{
    std::vector<uint64_t> served;
    loop_->schedule(now_ns, [this, &strand, &wanted, &server_mem, &served,
                             now_ns] {
        for (const PrefetchOffer &offer : wanted) {
            const uint8_t *bytes = cache_->lookup(offer.digest);
            if (bytes == nullptr)
                continue; // carrier aborted — copy-on-demand backfills
            server_mem.installPage(offer.pageNum, bytes);
            served.push_back(offer.pageNum);
        }
        loop_->wake(strand, now_ns);
    });
    loop_->block(strand);
    return served;
}

void
ServerRuntime::admitWriteBack(double now_ns,
                              std::vector<PrefetchOffer> pages,
                              std::vector<std::vector<uint8_t>> contents)
{
    NOL_ASSERT(pages.size() == contents.size(),
               "write-back admission shape mismatch");
    loop_->schedule(now_ns, [this, pages = std::move(pages),
                             contents = std::move(contents)] {
        for (size_t i = 0; i < pages.size(); ++i)
            cache_->insert(pages[i].digest, contents[i].data());
    });
}

void
ServerRuntime::attachLoopForTesting(sim::EventLoop *loop)
{
    loop_ = loop;
    if (loop == nullptr)
        return;
    active_ = 0;
    slots_ = admission_.maxConcurrentSessions;
    queue_.clear();
    policy_->reset();
    admission_waits_ = 0;
    admission_denials_ = 0;
    admission_wait_ns_ = 0;
    peak_active_ = 0;
    hold_start_ns_.clear();
    hold_total_ns_ = 0;
    hold_count_ = 0;
    publishLoad(0.0);
}

FleetReport
ServerRuntime::run(const std::vector<FleetClient> &clients)
{
    NOL_ASSERT(!clients.empty(), "fleet run without clients");
    sim::EventLoop loop;
    net::SharedMedium medium(loop);
    loop_ = &loop;
    active_ = 0;
    slots_ = admission_.maxConcurrentSessions;
    queue_.clear();
    policy_->reset();
    namespaces_.clear();
    admission_waits_ = 0;
    admission_denials_ = 0;
    admission_wait_ns_ = 0;
    peak_active_ = 0;

    // Run-scoped decision-stack state: fresh load ledger and priors.
    hold_start_ns_.clear();
    hold_total_ns_ = 0;
    hold_count_ = 0;
    priors_ = decision::FleetPriors{};
    publishLoad(0.0);

    // Sharing pages across sessions only makes sense with peers; a
    // 1-client fleet keeps the legacy prefetch path bit-identical.
    cache_active_ = cache_policy_.enabled && clients.size() >= 2;
    cache_.reset(new PageCache(cache_policy_.capacityPages));
    waves_.clear();
    open_wave_ = 0;
    next_wave_ = 1;
    pending_.clear();
    wave_waiters_.clear();
    cache_stats_ = PageCacheStats{};

    std::vector<std::unique_ptr<Session>> sessions;
    sessions.reserve(clients.size());
    FleetReport fleet;
    fleet.clients.resize(clients.size());

    for (size_t i = 0; i < clients.size(); ++i) {
        FleetHooks hooks;
        hooks.loop = &loop;
        hooks.medium = &medium;
        hooks.server = this;
        hooks.sessionId = static_cast<uint64_t>(i) + 1;
        hooks.startNs = clients[i].startSeconds * 1e9;
        hooks.priority = clients[i].priority;
        const compiler::CompiledProgram &prog =
            clients[i].program != nullptr ? *clients[i].program : program_;
        sessions.emplace_back(new Session(prog, clients[i].config, hooks));
    }
    for (size_t i = 0; i < clients.size(); ++i) {
        Session *session = sessions[i].get();
        const FleetClient &client = clients[i];
        RunReport *slot = &fleet.clients[i].report;
        sim::Strand *strand = loop.spawn(
            client.name, client.startSeconds * 1e9,
            [session, &client, slot] { *slot = session->run(client.input); });
        session->setStrand(strand);
    }

    loop.run();
    loop_ = nullptr;

    // --- Aggregate -----------------------------------------------------
    std::vector<double> latencies;
    latencies.reserve(clients.size());
    for (size_t i = 0; i < clients.size(); ++i) {
        FleetClientResult &result = fleet.clients[i];
        result.name = clients[i].name;
        result.startSeconds = clients[i].startSeconds;
        result.finishSeconds = result.report.mobileSeconds;
        result.latencySeconds = result.finishSeconds - result.startSeconds;
        latencies.push_back(result.latencySeconds);

        fleet.makespanSeconds =
            std::max(fleet.makespanSeconds, result.finishSeconds);
        fleet.totalOffloads += result.report.offloads;
        fleet.totalLocalRuns += result.report.localRuns;
        fleet.totalFailovers += result.report.failovers;
        fleet.totalColdStartOffloads += result.report.coldStartOffloads;
        fleet.totalQueueAvoidedLocals += result.report.queueAvoidedLocals;
        fleet.serverBusySeconds += result.report.breakdown.serverCompute +
                                   result.report.breakdown.fnPtrTranslation;
    }
    fleet.admissionWaits = admission_waits_;
    fleet.admissionDenials = admission_denials_;
    fleet.admissionWaitSeconds = admission_wait_ns_ * 1e-9;
    fleet.peakConcurrentSessions = peak_active_;
    fleet.peakConcurrentFlows = medium.stats().peakConcurrentFlows;
    fleet.mediumBusySeconds = medium.stats().busySeconds;
    fleet.mediumBytes = medium.stats().bytesCarried;
    fleet.cache = cache_stats_;
    fleet.cache.insertedPages = cache_->insertedPages();
    fleet.cache.evictedPages = cache_->evictedPages();
    fleet.priorsSeededSessions = priors_.seededSessions();
    fleet.priorsSeededTargets = priors_.seededTargets();
    if (fleet.makespanSeconds > 0) {
        fleet.offloadsPerSecond =
            static_cast<double>(fleet.totalOffloads) / fleet.makespanSeconds;
    }

    LatencySummary summary = summarizeLatencies(std::move(latencies));
    fleet.latencyP50Seconds = summary.p50;
    fleet.latencyP95Seconds = summary.p95;
    fleet.latencyP99Seconds = summary.p99;
    fleet.latencyP999Seconds = summary.p999;
    return fleet;
}

} // namespace nol::runtime

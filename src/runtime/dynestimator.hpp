/**
 * @file
 * Dynamic performance estimator (paper Sec. 4, "Local execution"):
 * re-evaluates Equation 1 at every offload-enabled call with the
 * *current* network bandwidth and the latest observed execution time
 * and memory usage, so offloading is refused under unfavorable
 * conditions (the `*` entries of Fig. 6 — e.g. 164.gzip on 802.11n).
 */
#ifndef NOL_RUNTIME_DYNESTIMATOR_HPP
#define NOL_RUNTIME_DYNESTIMATOR_HPP

#include <map>
#include <string>

#include "compiler/estimator.hpp"

namespace nol::runtime {

/** Live per-target knowledge, seeded from the compile-time profile. */
struct TargetKnowledge {
    double mobileSecondsPerInvocation = 0; ///< Tm per call
    uint64_t memBytes = 0;                 ///< M
    uint64_t observations = 0;
    // Link-failure feedback (failover suppression).
    uint64_t consecutiveFailures = 0; ///< failovers since last success
    uint64_t totalFailures = 0;       ///< failovers ever
    double suppressedUntilSeconds = 0; ///< no offload before this time
};

/** One decision with its reasoning. */
struct DynDecision {
    bool offload = false;
    bool suppressed = false; ///< declined because of recent failovers
    compiler::Estimate estimate;
};

/** The estimator itself. */
class DynamicEstimator
{
  public:
    /**
     * @param speed_ratio R (server/mobile), @param bandwidth_bps the
     * *effective* link bandwidth in bits per simulated second (already
     * scaled consistently with the workload byte counts).
     */
    DynamicEstimator(double speed_ratio, double bandwidth_bps)
        : speed_ratio_(speed_ratio), bandwidth_bps_(bandwidth_bps)
    {}

    /** Seed a target's knowledge from compile-time profiling. */
    void
    seed(const std::string &target, double mobile_seconds_per_invocation,
         uint64_t mem_bytes)
    {
        knowledge_[target] = {mobile_seconds_per_invocation, mem_bytes, 0};
    }

    /**
     * Decide whether to offload this invocation of @p target.
     * @p now_seconds is the mobile clock; while the target is inside a
     * failover-suppression window the decision is local without even
     * probing the link. Once the window has passed one probe attempt
     * is allowed (time-based recovery), and its outcome either resets
     * or doubles the window.
     */
    DynDecision
    decide(const std::string &target, double now_seconds = 0.0) const
    {
        DynDecision decision;
        auto it = knowledge_.find(target);
        if (it == knowledge_.end())
            return decision; // unknown target: stay local
        const TargetKnowledge &know = it->second;
        if (know.suppressedUntilSeconds > now_seconds) {
            decision.suppressed = true;
            return decision; // flaky link: stay local, no probe
        }
        compiler::EstimatorParams params;
        params.speedRatio = speed_ratio_;
        params.bandwidthMbps = bandwidth_bps_ / 1e6;
        decision.estimate = compiler::estimateGain(
            know.mobileSecondsPerInvocation, know.memBytes,
            /*invocations=*/1, params);
        decision.offload = decision.estimate.profitable();
        return decision;
    }

    /**
     * Fold an observed execution into the knowledge (exponential
     * moving average, so changing behavior is tracked).
     */
    void
    observe(const std::string &target, double mobile_equiv_seconds,
            uint64_t traffic_bytes)
    {
        TargetKnowledge &know = knowledge_[target];
        double alpha = know.observations == 0 ? 1.0 : 0.5;
        know.mobileSecondsPerInvocation =
            (1 - alpha) * know.mobileSecondsPerInvocation +
            alpha * mobile_equiv_seconds;
        // Eq. 1 counts M twice (there and back); the observed traffic
        // already includes both directions.
        know.memBytes = static_cast<uint64_t>(
            (1 - alpha) * static_cast<double>(know.memBytes) +
            alpha * static_cast<double>(traffic_bytes) / 2.0);
        ++know.observations;
    }

    /**
     * An offload of @p target failed over mid-flight at mobile time
     * @p now_seconds. Suppress further attempts for a window that
     * doubles with each consecutive failure (bounded), so a
     * permanently dead link converges to all-local execution with only
     * a logarithmic number of recovery probes.
     */
    void
    recordFailure(const std::string &target, double now_seconds)
    {
        TargetKnowledge &know = knowledge_[target];
        ++know.consecutiveFailures;
        ++know.totalFailures;
        know.suppressedUntilSeconds =
            now_seconds + failurePenaltySeconds(know.consecutiveFailures);
    }

    /** A later offload of @p target completed: the link recovered. */
    void
    recordSuccess(const std::string &target)
    {
        TargetKnowledge &know = knowledge_[target];
        know.consecutiveFailures = 0;
        know.suppressedUntilSeconds = 0;
    }

    /** Suppression window after the Nth consecutive failure (N ≥ 1). */
    static double
    failurePenaltySeconds(uint64_t consecutive_failures)
    {
        double penalty = kBasePenaltySeconds;
        for (uint64_t i = 1; i < consecutive_failures; ++i) {
            penalty *= 2.0;
            if (penalty >= kMaxPenaltySeconds)
                return kMaxPenaltySeconds;
        }
        return penalty < kMaxPenaltySeconds ? penalty : kMaxPenaltySeconds;
    }

    static constexpr double kBasePenaltySeconds = 0.5;
    static constexpr double kMaxPenaltySeconds = 120.0;

    const std::map<std::string, TargetKnowledge> &knowledge() const
    {
        return knowledge_;
    }

  private:
    double speed_ratio_;
    double bandwidth_bps_;
    std::map<std::string, TargetKnowledge> knowledge_;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_DYNESTIMATOR_HPP

/**
 * @file
 * Dynamic performance estimator (paper Sec. 4, "Local execution"):
 * re-evaluates Equation 1 at every offload-enabled call with the
 * *current* network bandwidth and the latest observed execution time
 * and memory usage, so offloading is refused under unfavorable
 * conditions (the `*` entries of Fig. 6 — e.g. 164.gzip on 802.11n).
 */
#ifndef NOL_RUNTIME_DYNESTIMATOR_HPP
#define NOL_RUNTIME_DYNESTIMATOR_HPP

#include <map>
#include <string>

#include "compiler/estimator.hpp"

namespace nol::runtime {

/** Live per-target knowledge, seeded from the compile-time profile. */
struct TargetKnowledge {
    double mobileSecondsPerInvocation = 0; ///< Tm per call
    uint64_t memBytes = 0;                 ///< M
    uint64_t observations = 0;
};

/** One decision with its reasoning. */
struct DynDecision {
    bool offload = false;
    compiler::Estimate estimate;
};

/** The estimator itself. */
class DynamicEstimator
{
  public:
    /**
     * @param speed_ratio R (server/mobile), @param bandwidth_bps the
     * *effective* link bandwidth in bits per simulated second (already
     * scaled consistently with the workload byte counts).
     */
    DynamicEstimator(double speed_ratio, double bandwidth_bps)
        : speed_ratio_(speed_ratio), bandwidth_bps_(bandwidth_bps)
    {}

    /** Seed a target's knowledge from compile-time profiling. */
    void
    seed(const std::string &target, double mobile_seconds_per_invocation,
         uint64_t mem_bytes)
    {
        knowledge_[target] = {mobile_seconds_per_invocation, mem_bytes, 0};
    }

    /** Decide whether to offload this invocation of @p target. */
    DynDecision
    decide(const std::string &target) const
    {
        DynDecision decision;
        auto it = knowledge_.find(target);
        if (it == knowledge_.end())
            return decision; // unknown target: stay local
        const TargetKnowledge &know = it->second;
        compiler::EstimatorParams params;
        params.speedRatio = speed_ratio_;
        params.bandwidthMbps = bandwidth_bps_ / 1e6;
        decision.estimate = compiler::estimateGain(
            know.mobileSecondsPerInvocation, know.memBytes,
            /*invocations=*/1, params);
        decision.offload = decision.estimate.profitable();
        return decision;
    }

    /**
     * Fold an observed execution into the knowledge (exponential
     * moving average, so changing behavior is tracked).
     */
    void
    observe(const std::string &target, double mobile_equiv_seconds,
            uint64_t traffic_bytes)
    {
        TargetKnowledge &know = knowledge_[target];
        double alpha = know.observations == 0 ? 1.0 : 0.5;
        know.mobileSecondsPerInvocation =
            (1 - alpha) * know.mobileSecondsPerInvocation +
            alpha * mobile_equiv_seconds;
        // Eq. 1 counts M twice (there and back); the observed traffic
        // already includes both directions.
        know.memBytes = static_cast<uint64_t>(
            (1 - alpha) * static_cast<double>(know.memBytes) +
            alpha * static_cast<double>(traffic_bytes) / 2.0);
        ++know.observations;
    }

    const std::map<std::string, TargetKnowledge> &knowledge() const
    {
        return knowledge_;
    }

  private:
    double speed_ratio_;
    double bandwidth_bps_;
    std::map<std::string, TargetKnowledge> knowledge_;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_DYNESTIMATOR_HPP

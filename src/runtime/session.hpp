/**
 * @file
 * One client's offloading session: the per-client state machine of the
 * Fig. 5 life cycle (local execution, dynamic decision, initialization,
 * offloading execution, finalization), extracted from the old
 * single-client OffloadSystem so it can run either solo — exactly the
 * legacy behavior, same machines, same private network, same timing to
 * the bit — or as one of N concurrent sessions inside a ServerRuntime
 * fleet, where it additionally:
 *
 *  - acquires a server slot per offload (admission control; on denial
 *    the target runs locally and the event is marked `overflow`),
 *  - times its transfers on the fleet's SharedMedium instead of the
 *    closed-form private pipe,
 *  - allocates unified addresses from the per-session UVA namespace
 *    handed out by the ServerRuntime.
 */
#ifndef NOL_RUNTIME_SESSION_HPP
#define NOL_RUNTIME_SESSION_HPP

#include <memory>

#include "runtime/offload.hpp"

namespace nol::sim {
class EventLoop;
class Strand;
} // namespace nol::sim

namespace nol::net {
class SharedMedium;
} // namespace nol::net

namespace nol::runtime {

class ServerRuntime;

/** Wiring a fleet session receives from its ServerRuntime. */
struct FleetHooks {
    sim::EventLoop *loop = nullptr;
    net::SharedMedium *medium = nullptr;
    ServerRuntime *server = nullptr;
    sim::Strand *strand = nullptr; ///< set via setStrand() after spawn
    uint64_t sessionId = 0;
    double startNs = 0; ///< client arrival time on the fleet timeline
    int priority = 0;   ///< admission priority (FleetClient::priority)
};

/** One client's run, solo or fleet. */
class Session
{
  public:
    /** Solo session: the legacy OffloadSystem::run() behavior. */
    Session(const compiler::CompiledProgram &program,
            const SystemConfig &config);

    /** Fleet session: shared timeline, medium and server runtime. */
    Session(const compiler::CompiledProgram &program,
            const SystemConfig &config, const FleetHooks &hooks);

    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Bind the cooperative strand this session runs on (fleet mode). */
    void setStrand(sim::Strand *strand);

    /** Execute the program end to end. */
    RunReport run(const RunInput &input);

    struct Impl; ///< defined in session.cpp

  private:
    std::unique_ptr<Impl> impl_;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_SESSION_HPP

#include "runtime/session.hpp"

#include <cstring>

#include "compiler/partitioner.hpp"
#include "decision/engine.hpp"
#include "interp/externals.hpp"
#include "interp/interp.hpp"
#include "interp/loader.hpp"
#include "net/medium.hpp"
#include "runtime/server.hpp"
#include "sim/costmodel.hpp"
#include "sim/eventloop.hpp"
#include "support/strings.hpp"

namespace nol::runtime {

using interp::RtVal;

namespace {

/** One offload-enabled target, resolved in both modules. */
struct TargetEntry {
    std::string name;
    int id = 0;
    ir::Function *mobileFn = nullptr;
    ir::Function *serverFn = nullptr;
};

} // namespace

/** Shared state of one session (the old RunContext). */
struct Session::Impl {
    const compiler::CompiledProgram &prog;
    SystemConfig cfg;
    FleetHooks fleet;
    sim::SimMachine mobile;
    sim::SimMachine server;
    net::SimNetwork network;
    CommManager comm;
    std::unique_ptr<UvaManager> ownedUva; ///< solo mode only
    UvaManager &uva;
    interp::ProgramImage mobileImage;
    interp::ProgramImage serverImage;
    decision::Engine dyn;
    decision::RecordLog decisionLog; ///< provenance of every decide()
    std::map<std::string, TargetEntry> targetsByStub;

    uint64_t offloads = 0;
    uint64_t localRuns = 0;
    uint64_t failovers = 0;
    double serverComputeNs = 0;
    uint64_t fnPtrUnits = 0;
    std::vector<OffloadEvent> events;

    // Page-cache accounting (stays zero on the legacy prefetch path).
    uint64_t digestHandshakes = 0;
    uint64_t prefetchPagesSent = 0;
    uint64_t prefetchPagesCached = 0;

    // Fleet-mode admission accounting.
    uint64_t admissionWaits = 0;
    uint64_t admissionDenials = 0;
    double admissionWaitNs = 0;
    bool slotHeld = false;

    // Decision-stack accounting.
    uint64_t queueAvoidedLocals = 0;
    uint64_t priorsSeededTargets = 0;

    Impl(const compiler::CompiledProgram &program,
         const SystemConfig &config, const FleetHooks &hooks)
        : prog(program), cfg(config), fleet(hooks),
          mobile(sim::MachineRole::Mobile, program.mobileSpec),
          server(sim::MachineRole::Server, program.serverSpec),
          network(config.network, config.memScale),
          comm(mobile, server, network, config.compressionEnabled,
               config.retry),
          ownedUva(hooks.server == nullptr ? new UvaManager() : nullptr),
          uva(hooks.server != nullptr
                  ? hooks.server->namespaceFor(hooks.sessionId)
                  : *ownedUva),
          dyn(program.estimatorParams.speedRatio,
              net::SimNetwork(config.network, config.memScale)
                  .effectiveBitsPerSecond())
    {
        network.setFaultPlan(config.faultPlan);
        dyn.setSink(&decisionLog);
        if (fleet.server != nullptr && cfg.fleetPriorsEnabled) {
            // Publish observations fleet-wide and read the knowledge
            // base at run() start. Strictly flag-gated: with priors
            // off the engine never touches the server's base.
            dyn.attachFleetPriors(&fleet.server->fleetPriors());
        }
        mobile.power().setRate(sim::PowerState::Receive,
                               config.network.receiveMw);
        mobile.power().setRate(sim::PowerState::Transmit,
                               config.network.transmitMw);
        if (fleet.loop != nullptr) {
            // Every clock advance pushes the fleet timeline's horizon.
            mobile.bindClock(*fleet.loop);
            server.bindClock(*fleet.loop);
        }
    }

    /**
     * Take a server slot before offloading. Solo sessions always own
     * the whole server; fleet sessions queue under admission control
     * and may be denied (queue timeout) — the caller then runs the
     * target locally (overflow).
     */
    bool
    acquireServerSlot(double predicted_hold_seconds = 0)
    {
        if (fleet.server == nullptr)
            return true;
        comm.syncClocks();
        AdmissionRequest request;
        request.priority = fleet.priority;
        request.predictedHoldSeconds = predicted_hold_seconds;
        AdmissionResult res = fleet.server->acquire(
            *fleet.strand, fleet.sessionId, mobile.nowNs(), request);
        if (res.waitedNs > 0) {
            // The device idled in the queue; the (not-yet-started)
            // server process costs nothing.
            mobile.syncTo(res.wakeNs, sim::PowerState::Waiting);
            server.syncTo(res.wakeNs, sim::PowerState::Idle);
            ++admissionWaits;
            admissionWaitNs += res.waitedNs;
        }
        if (!res.granted) {
            ++admissionDenials;
            return false;
        }
        slotHeld = true;
        return true;
    }

    void
    releaseServerSlot()
    {
        if (fleet.server == nullptr || !slotHeld)
            return;
        slotHeld = false;
        fleet.server->release(fleet.sessionId, mobile.nowNs());
    }

    /**
     * Prefetch through the server's content-addressed page cache?
     * Requires the session to opt in *and* the fleet to actually share
     * pages (≥2 clients) — otherwise the legacy push path runs and the
     * run is bit-identical to a cache-free build.
     */
    bool
    cacheActive() const
    {
        return fleet.server != nullptr && cfg.pageCacheEnabled &&
               fleet.server->cacheActive();
    }

    RunReport run(const RunInput &input);
};

namespace {

/** Remote-I/O-aware environment of the server interpreter. */
class ServerEnv : public interp::DefaultEnv
{
  public:
    explicit ServerEnv(Session::Impl &ctx) : ctx_(ctx)
    {
        setUvaHeap(&ctx.uva.serverHeap());
    }

    RtVal
    callExternal(interp::Interp &interp, const ir::Instruction &call,
                 std::vector<RtVal> &args) override
    {
        const std::string &name = call.callee()->name();
        if (name.rfind(compiler::kRemoteIoPrefix, 0) == 0)
            return remoteIo(interp, name.substr(2), call, args);
        return DefaultEnv::callExternal(interp, call, args);
    }

    void
    onMachineAsm(interp::Interp &interp, const ir::Instruction &inst) override
    {
        (void)interp;
        panic("machine-specific instruction \"%s\" reached the server — "
              "the function filter must prevent this",
              inst.asmText().c_str());
    }

    /** Ship any batched output to the mobile device. */
    void
    flushOutputs()
    {
        if (out_text_.empty() && file_ops_.empty())
            return;
        uint64_t bytes = 64 + out_text_.size();
        for (const auto &[handle, data] : file_ops_)
            bytes += 16 + data.size();
        ctx_.comm.sendToMobile(bytes, CommCategory::RemoteIo);
        ctx_.mobile.console() += out_text_;
        for (const auto &[handle, data] : file_ops_) {
            ctx_.mobile.fs().write(
                handle, reinterpret_cast<const uint8_t *>(data.data()),
                data.size());
        }
        out_text_.clear();
        file_ops_.clear();
    }

  private:
    /** Block size of the read-ahead cache for r_fgetc (buffered stdio). */
    static constexpr uint64_t kReadAhead = 4096;

    struct FileCursor {
        uint64_t pos = 0;
        uint64_t cacheBase = 0;
        std::string cache;
    };

    /** Round trip to the mobile device: request + response. */
    void
    roundTrip(uint64_t request_bytes, uint64_t response_bytes)
    {
        flushOutputs();
        ctx_.comm.sendToMobile(request_bytes, CommCategory::RemoteIo);
        ctx_.mobile.advanceCompute(40); // request service on the device
        ctx_.comm.sendToServer(response_bytes, CommCategory::RemoteIo);
    }

    FileCursor &
    cursor(uint64_t handle)
    {
        return cursors_[handle];
    }

    /** Refill the read-ahead cache of @p handle at its cursor. */
    void
    refill(uint64_t handle)
    {
        FileCursor &cur = cursor(handle);
        std::vector<uint8_t> buf(kReadAhead);
        // The request carries the position; the mobile device seeks
        // and reads one block on the server's behalf.
        ctx_.mobile.fs().seek(handle, static_cast<int64_t>(cur.pos), 0);
        uint64_t got = ctx_.mobile.fs().read(handle, buf.data(), kReadAhead);
        roundTrip(64, 64 + got);
        cur.cacheBase = cur.pos;
        cur.cache.assign(reinterpret_cast<char *>(buf.data()), got);
    }

    RtVal
    remoteIo(interp::Interp &interp, const std::string &op,
             const ir::Instruction &call, std::vector<RtVal> &args)
    {
        (void)call;
        sim::SimMachine &mob = ctx_.mobile;

        // --- Output operations: batched one-way (cheap) ---------------
        if (op == "printf") {
            std::string fmt = interp.readCString(args[0].ptr());
            std::string text = formatPrintf(interp, fmt, args, 1);
            out_text_ += text;
            maybeFlush();
            return RtVal::ofInt(static_cast<int64_t>(text.size()));
        }
        if (op == "puts") {
            out_text_ += interp.readCString(args[0].ptr());
            out_text_ += '\n';
            maybeFlush();
            return RtVal::ofInt(0);
        }
        if (op == "putchar") {
            out_text_ += static_cast<char>(args[0].i);
            maybeFlush();
            return RtVal::ofInt(args[0].i);
        }
        if (op == "fputc") {
            file_ops_.emplace_back(args[1].ptr(),
                                   std::string(1, static_cast<char>(args[0].i)));
            maybeFlush();
            return RtVal::ofInt(args[0].i);
        }
        if (op == "fwrite") {
            uint64_t total = args[1].ptr() * args[2].ptr();
            std::string data(total, '\0');
            if (total > 0)
                interp.readBytes(args[0].ptr(), total,
                                 reinterpret_cast<uint8_t *>(data.data()));
            file_ops_.emplace_back(args[3].ptr(), std::move(data));
            maybeFlush();
            uint64_t item = args[1].ptr() == 0 ? 1 : args[1].ptr();
            return RtVal::ofInt(static_cast<int64_t>(total / item));
        }

        // --- Input operations: round trips (expensive) -----------------
        if (op == "fopen") {
            std::string path = interp.readCString(args[0].ptr());
            std::string mode = interp.readCString(args[1].ptr());
            roundTrip(64 + path.size(), 64);
            uint64_t handle = mob.fs().open(path, mode);
            if (handle != 0)
                cursors_[handle] = {};
            return RtVal::ofPtr(handle);
        }
        if (op == "fclose") {
            roundTrip(64, 64);
            cursors_.erase(args[0].ptr());
            return RtVal::ofInt(mob.fs().close(args[0].ptr()) ? 0 : -1);
        }
        if (op == "fgetc") {
            FileCursor &cur = cursor(args[0].ptr());
            if (cur.pos < cur.cacheBase ||
                cur.pos >= cur.cacheBase + cur.cache.size()) {
                refill(args[0].ptr());
            }
            if (cur.pos >= cur.cacheBase + cur.cache.size())
                return RtVal::ofInt(-1); // EOF
            int c = static_cast<unsigned char>(
                cur.cache[cur.pos - cur.cacheBase]);
            ++cur.pos;
            return RtVal::ofInt(c);
        }
        if (op == "feof") {
            FileCursor &cur = cursor(args[0].ptr());
            if (cur.pos >= cur.cacheBase + cur.cache.size())
                refill(args[0].ptr());
            bool eof = cur.pos >= cur.cacheBase + cur.cache.size();
            return RtVal::ofInt(eof ? 1 : 0);
        }
        if (op == "fread") {
            uint64_t total = args[1].ptr() * args[2].ptr();
            FileCursor &cur = cursor(args[3].ptr());
            std::vector<uint8_t> buf(total);
            mob.fs().seek(args[3].ptr(), static_cast<int64_t>(cur.pos), 0);
            uint64_t got = mob.fs().read(args[3].ptr(), buf.data(), total);
            roundTrip(64, 64 + got);
            if (got > 0)
                interp.writeBytes(args[0].ptr(), got, buf.data());
            cur.pos += got;
            cur.cache.clear();
            uint64_t item = args[1].ptr() == 0 ? 1 : args[1].ptr();
            return RtVal::ofInt(static_cast<int64_t>(got / item));
        }
        if (op == "fseek") {
            FileCursor &cur = cursor(args[0].ptr());
            int whence = static_cast<int>(args[2].i);
            if (whence == 0) {
                cur.pos = static_cast<uint64_t>(args[1].i);
            } else if (whence == 1) {
                cur.pos = static_cast<uint64_t>(
                    static_cast<int64_t>(cur.pos) + args[1].i);
            } else {
                roundTrip(64, 64);
                mob.fs().seek(args[0].ptr(), 0, 2);
                int64_t size = mob.fs().tell(args[0].ptr());
                cur.pos = static_cast<uint64_t>(size + args[1].i);
            }
            cur.cache.clear();
            return RtVal::ofInt(0);
        }
        if (op == "ftell") {
            return RtVal::ofInt(
                static_cast<int64_t>(cursor(args[0].ptr()).pos));
        }
        panic("unknown remote I/O operation r_%s", op.c_str());
    }

    void
    maybeFlush()
    {
        uint64_t pending = out_text_.size();
        for (const auto &[handle, data] : file_ops_)
            pending += data.size();
        if (pending >= kFlushThreshold)
            flushOutputs();
    }

    static constexpr uint64_t kFlushThreshold = 8192;

    Session::Impl &ctx_;
    std::string out_text_;
    std::vector<std::pair<uint64_t, std::string>> file_ops_;
    std::map<uint64_t, FileCursor> cursors_;
};

/** Mobile-side environment: intercepts the offload stubs. */
class MobileEnv : public interp::DefaultEnv
{
  public:
    explicit MobileEnv(Session::Impl &ctx) : ctx_(ctx)
    {
        setUvaHeap(&ctx.uva.mobileHeap());
    }

    RtVal
    callExternal(interp::Interp &interp, const ir::Instruction &call,
                 std::vector<RtVal> &args) override
    {
        const std::string &name = call.callee()->name();
        if (name.rfind(compiler::kOffloadStubPrefix, 0) == 0)
            return handleOffload(interp, name, args);
        return DefaultEnv::callExternal(interp, call, args);
    }

  private:
    RtVal
    handleOffload(interp::Interp &interp, const std::string &stub,
                  std::vector<RtVal> &args)
    {
        auto it = ctx_.targetsByStub.find(stub);
        NOL_ASSERT(it != ctx_.targetsByStub.end(), "unknown stub %s",
                   stub.c_str());
        const TargetEntry &target = it->second;

        if (ctx_.cfg.forceLocal)
            return runLocal(interp, target, args, /*declined=*/false);

        if (ctx_.cfg.idealOffload)
            return runIdeal(interp, target, args);

        // Dynamic performance estimation (paper Sec. 4), run through
        // the layered decision engine: failover suppression, single
        // recovery probes and — when admission-aware — the predicted
        // queue wait all speak through one DecisionRecord.
        decision::DecisionRecord decision;
        decision.offload = true;
        if (ctx_.cfg.dynamicDecision) {
            ctx_.mobile.advanceCompute(30); // estimation cost
            const decision::LoadSnapshot *load = nullptr;
            if (ctx_.cfg.admissionAwareDecision &&
                ctx_.fleet.server != nullptr) {
                load = &ctx_.fleet.server->loadSnapshot();
            }
            decision = ctx_.dyn.decide(target.name,
                                       ctx_.mobile.nowNs() * 1e-9, load);
        }
        if (!decision.offload) {
            bool queue_avoided =
                decision.verdict == decision::Verdict::QueueErased;
            return runLocal(interp, target, args, /*declined=*/true,
                            decision.suppressed, /*overflow=*/false,
                            queue_avoided);
        }
        // Fleet mode: the server must admit this offloading process.
        // A denied (queue-timeout) request overflows to local
        // execution — degraded, never deadlocked. The Eq. 1 terms of
        // the decision double as the predicted slot-hold time the SPJF
        // admission policy orders by: Ts + Tc = (Tm - Tideal) + Tc.
        double predicted_hold = 0;
        if (decision.terms.mobileSeconds > 0) {
            predicted_hold = decision.terms.mobileSeconds -
                             decision.terms.idealGain +
                             decision.terms.commSeconds;
        }
        if (!ctx_.acquireServerSlot(predicted_hold)) {
            // The link was never exercised: return a granted recovery
            // probe un-spent so the next decide() may probe again.
            ctx_.dyn.cancelProbe(target.name);
            return runLocal(interp, target, args, /*declined=*/true,
                            /*suppressed=*/false, /*overflow=*/true);
        }
        return runRemote(interp, target, decision, args);
    }

    RtVal
    runLocal(interp::Interp &interp, const TargetEntry &target,
             const std::vector<RtVal> &args, bool declined,
             bool suppressed = false, bool overflow = false,
             bool queue_avoided = false)
    {
        ++ctx_.localRuns;
        if (queue_avoided)
            ++ctx_.queueAvoidedLocals;
        double start = ctx_.mobile.nowNs();
        RtVal ret = interp.call(target.mobileFn, args);
        if (declined) {
            // Keep the estimator's Tm fresh from the local run.
            ctx_.dyn.observe(target.name,
                             (ctx_.mobile.nowNs() - start) * 1e-9, 0);
        }
        OffloadEvent event;
        event.target = target.name;
        event.offloaded = false;
        event.suppressed = suppressed;
        event.overflow = overflow;
        event.queueAvoided = queue_avoided;
        ctx_.events.push_back(event);
        return ret;
    }

    RtVal
    runIdeal(interp::Interp &interp, const TargetEntry &target,
             const std::vector<RtVal> &args)
    {
        // Zero-overhead offloading: the target runs at server speed
        // while the device waits; no communication, no translation.
        ++ctx_.offloads;
        double old_ns = ctx_.mobile.setNsPerCostUnit(
            ctx_.prog.serverSpec.nsPerCostUnit);
        double old_scale = ctx_.mobile.setArithCostScale(
            ctx_.prog.serverSpec.arithCostScale);
        double old_mem = ctx_.mobile.setMemCostScale(
            ctx_.prog.serverSpec.memCostScale);
        sim::PowerState old_state =
            ctx_.mobile.setComputeState(sim::PowerState::Waiting);
        RtVal ret = interp.call(target.mobileFn, args);
        ctx_.mobile.setNsPerCostUnit(old_ns);
        ctx_.mobile.setArithCostScale(old_scale);
        ctx_.mobile.setMemCostScale(old_mem);
        ctx_.mobile.setComputeState(old_state);

        OffloadEvent event;
        event.target = target.name;
        event.offloaded = true;
        event.ideal = true;
        ctx_.events.push_back(event);
        return ret;
    }

    /** Pages to push at initialization (Fig. 5 "prefetch"). */
    std::vector<uint64_t>
    collectPrefetchPages(bool everything) const
    {
        // Unified pages are the ones with a named UVA region (globals
        // or either heap sub-range); everything else is machine-local.
        auto in_uva = [this](uint64_t page_num) {
            return ctx_.uva.regionOfPage(page_num) != nullptr;
        };
        std::vector<uint64_t> out;
        if (everything) {
            auto in_stack = [](uint64_t page_num) {
                uint64_t addr = page_num * sim::kPageSize;
                return addr >= sim::kMobileStackBase - sim::kStackSize &&
                       addr < sim::kMobileStackBase;
            };
            for (uint64_t page : ctx_.mobile.mem().presentPages()) {
                if (in_uva(page) || in_stack(page))
                    out.push_back(page);
            }
            return out;
        }
        for (uint64_t page : ctx_.mobile.mem().dirtyPages()) {
            if (in_uva(page))
                out.push_back(page);
        }
        return out;
    }

    /** Per-page digesting throughput on the device: ~16 bytes/unit. */
    static constexpr uint64_t kDigestCostUnits = sim::kPageSize / 16;

    /**
     * Cache-aware initialization (tentpole of the fleet page cache):
     * instead of pushing every prefetch page, the device wires the
     * pages' content digests, the server batches the handshake with
     * every other prefetch of the same admission wave, and only the
     * pages nobody else has ("need") cross the medium. Pages the cache
     * or an in-flight peer already carries install server-side for
     * free once their carrier's transfer lands (arrival barrier).
     */
    void
    prefetchThroughCache(const std::vector<uint64_t> &pages)
    {
        ServerRuntime &srv = *ctx_.fleet.server;

        std::vector<PrefetchOffer> offers;
        offers.reserve(pages.size());
        for (uint64_t page : pages)
            offers.push_back({page, ctx_.mobile.mem().pageDigest(page)});
        ctx_.mobile.advanceCompute(pages.size() * kDigestCostUnits);
        ++ctx_.digestHandshakes;

        ctx_.comm.sendDigestsToServer(offers.size());
        PrefetchPlan plan =
            srv.planPrefetch(*ctx_.fleet.strand, ctx_.fleet.sessionId,
                             ctx_.mobile.nowNs(), offers);
        // The batch window: the device idles until the wave flushed.
        if (plan.flushNs > ctx_.mobile.nowNs()) {
            ctx_.mobile.syncTo(plan.flushNs, sim::PowerState::Waiting);
            ctx_.server.syncTo(plan.flushNs, sim::PowerState::Idle);
        }
        try {
            ctx_.comm.sendHaveNeedToMobile(offers.size());
            std::vector<uint64_t> carry_pages;
            carry_pages.reserve(plan.carry.size());
            for (const PrefetchOffer &offer : plan.carry)
                carry_pages.push_back(offer.pageNum);
            ctx_.comm.pushPagesToServer(carry_pages, CommCategory::Prefetch);
        } catch (const CommFailure &) {
            // The wave already counts on this carrier: release its
            // digests so waiting peers complete (their pages simply
            // stay missing and copy-on-demand backfills them).
            srv.abortPrefetch(plan.waveId, plan.carry,
                              ctx_.mobile.nowNs());
            throw;
        }
        double done_ns = srv.finishPrefetch(
            *ctx_.fleet.strand, plan.waveId, plan.dependsOnWaves,
            ctx_.mobile.nowNs(), plan.carry, ctx_.server.mem());
        if (done_ns > ctx_.mobile.nowNs()) {
            ctx_.mobile.syncTo(done_ns, sim::PowerState::Waiting);
            ctx_.server.syncTo(done_ns, sim::PowerState::Idle);
        }
        std::vector<uint64_t> served = srv.collectCachedPages(
            *ctx_.fleet.strand, ctx_.mobile.nowNs(), plan.cached,
            ctx_.server.mem());
        // Served pages are now on the server exactly as if pushed; the
        // device's dirty bits clear like the legacy path's would (a
        // failover snapshot restores them, same as for pushed pages).
        for (uint64_t page : served)
            ctx_.mobile.mem().clearDirty(page);
        ctx_.prefetchPagesSent += plan.carry.size();
        ctx_.prefetchPagesCached += served.size();
    }

    /**
     * Mobile-side state an aborted offload must roll back: everything
     * a mid-flight remote invocation may have changed on the device
     * before its write-back committed. Memory *content* needs no
     * snapshot — pages only change at finalization, which is atomic
     * behind the write-back transfer — but prefetch clears dirty bits
     * and remote I/O replays console/file writes on the device.
     */
    struct FailoverSnapshot {
        std::string console;
        sim::SimFileSystem fs;
        std::string input;
        size_t inputPos = 0;
        std::vector<uint64_t> dirtyPages;
    };

    RtVal
    runRemote(interp::Interp &interp, const TargetEntry &target,
              const decision::DecisionRecord &decision,
              std::vector<RtVal> &args)
    {
        // A perfect link can never fail a transfer, so the snapshot is
        // only needed (and only paid for) when faults are injected.
        if (!ctx_.network.faultPlan().enabled)
            return executeRemote(target, decision, args);

        FailoverSnapshot snapshot;
        snapshot.console = ctx_.mobile.console();
        snapshot.fs = ctx_.mobile.fs();
        snapshot.input = ctx_.mobile.input();
        snapshot.inputPos = ctx_.mobile.inputPos();
        snapshot.dirtyPages = ctx_.mobile.mem().dirtyPages();
        try {
            return executeRemote(target, decision, args);
        } catch (const CommFailure &failure) {
            return failOver(interp, target, args, snapshot, failure);
        }
    }

    RtVal
    executeRemote(const TargetEntry &target,
                  const decision::DecisionRecord &decision,
                  std::vector<RtVal> &args)
    {
        uint64_t wire_before = ctx_.comm.totalWireBytes();
        uint64_t raw_before = ctx_.comm.totalRawBytes();

        // --- Initialization (Fig. 5): offloading information + ------
        // prefetch of the mobile heap.
        ctx_.comm.sendToServer(128 + 16 * args.size(),
                               CommCategory::Control);
        if (ctx_.cfg.prefetchEnabled || !ctx_.cfg.copyOnDemand) {
            std::vector<uint64_t> pages =
                collectPrefetchPages(!ctx_.cfg.copyOnDemand);
            if (ctx_.cacheActive() && !pages.empty()) {
                prefetchThroughCache(pages);
            } else {
                ctx_.comm.pushPagesToServer(pages, CommCategory::Prefetch);
                ctx_.prefetchPagesSent += pages.size();
            }
        }

        // Fresh server process: re-initialize server-local globals and
        // service the rest by copy-on-demand.
        interp::loadProgram(*ctx_.prog.partition.serverModule, ctx_.server,
                            /*write_uva_content=*/false);
        ctx_.server.mem().clearDirtyBits();
        ctx_.server.mem().setFaultHandler([this](uint64_t page_num) {
            if (ctx_.cfg.copyOnDemand &&
                ctx_.mobile.mem().isPresent(page_num)) {
                ctx_.comm.fetchPageToServer(page_num);
            } else {
                // Fresh page (server stack / new allocation) — or the
                // send-all ablation already shipped everything.
                ctx_.server.mem().installPage(page_num, nullptr);
            }
            return true;
        });

        // --- Offloading execution ------------------------------------
        ServerEnv server_env(ctx_);
        interp::Interp server_interp(ctx_.server,
                                     *ctx_.prog.partition.serverModule,
                                     ctx_.serverImage, server_env);
        server_interp.setStepLimit(ctx_.cfg.stepLimit);
        server_interp.setIndirectCallExtraCost(ctx_.cfg.fnPtrTranslateCost);

        ctx_.comm.syncClocks();
        uint64_t units_before = ctx_.server.computeUnits();
        RtVal ret = server_interp.call(target.serverFn, args);
        uint64_t units_exec = ctx_.server.computeUnits() - units_before;
        ctx_.fnPtrUnits += server_interp.indirectExtraUnits();

        // --- Finalization ----------------------------------------------
        server_env.flushOutputs();
        ctx_.comm.sendToMobile(64, CommCategory::Control); // return value
        ctx_.comm.writeBackDirtyPages();
        if (ctx_.cacheActive()) {
            // Write-back ledger: the server held these exact contents a
            // moment ago, so they enter the cache for free — this is
            // what answers "have" when a failover-reconnect prefetch
            // re-offers state the server has already seen. Copies are
            // owned because the process terminates before the cache
            // event fires. Hashing here is off the device's critical
            // path and goes uncharged.
            std::vector<uint64_t> dirty = ctx_.server.mem().dirtyPages();
            std::vector<PrefetchOffer> admitted;
            std::vector<std::vector<uint8_t>> contents;
            admitted.reserve(dirty.size());
            contents.reserve(dirty.size());
            for (uint64_t page : dirty) {
                const uint8_t *data = ctx_.server.mem().pageData(page);
                admitted.push_back({page, sim::digestPage(data)});
                contents.emplace_back(data, data + sim::kPageSize);
            }
            if (!admitted.empty()) {
                ctx_.fleet.server->admitWriteBack(ctx_.mobile.nowNs(),
                                                  std::move(admitted),
                                                  std::move(contents));
            }
        }
        ctx_.server.mem().setFaultHandler(nullptr);
        ctx_.server.mem().clear(); // terminate the offloading process
        ctx_.comm.syncClocks();
        ctx_.releaseServerSlot();

        double server_seconds =
            static_cast<double>(units_exec) *
            ctx_.prog.serverSpec.nsPerCostUnit * 1e-9;
        ctx_.serverComputeNs += static_cast<double>(units_exec) *
                                ctx_.prog.serverSpec.nsPerCostUnit;

        uint64_t traffic =
            ctx_.comm.totalRawBytes() - raw_before;
        ctx_.dyn.observe(target.name,
                         server_seconds *
                             ctx_.prog.estimatorParams.speedRatio,
                         traffic);
        ctx_.dyn.recordSuccess(target.name);
        ++ctx_.offloads;

        OffloadEvent event;
        event.target = target.name;
        event.offloaded = true;
        event.estimatedGain = decision.terms.gain;
        event.trafficBytes = static_cast<double>(
            ctx_.comm.totalWireBytes() - wire_before);
        event.rawTrafficBytes = static_cast<double>(
            ctx_.comm.totalRawBytes() - raw_before);
        event.serverSeconds = server_seconds;
        ctx_.events.push_back(event);
        return ret;
    }

    /**
     * Mid-offload failover (the robustness layer CloneCloud and COARA
     * require): the link died past the point of no return, so abort
     * the server invocation, discard its partial state, roll the
     * device back to the pre-offload snapshot and replay the target
     * locally. The mobile clock only ever moves forward — the time
     * burned on retries and timeouts stays burned.
     */
    RtVal
    failOver(interp::Interp &interp, const TargetEntry &target,
             std::vector<RtVal> &args, const FailoverSnapshot &snapshot,
             const CommFailure &failure)
    {
        (void)failure;
        // The aborted offloading process no longer occupies the server.
        ctx_.releaseServerSlot();
        // Terminate the offloading process: every partially transferred
        // or computed server page is discarded.
        ctx_.server.mem().setFaultHandler(nullptr);
        ctx_.server.mem().clear();

        // Roll back device-visible side effects of the aborted attempt
        // (remote-I/O output replays, consumed input, cleared dirty
        // bits); the local replay will regenerate them.
        ctx_.mobile.console() = snapshot.console;
        ctx_.mobile.fs() = snapshot.fs;
        ctx_.mobile.input() = snapshot.input;
        ctx_.mobile.inputPos() = snapshot.inputPos;
        for (uint64_t page_num : snapshot.dirtyPages)
            ctx_.mobile.mem().markDirty(page_num);

        // Feed the failure back: suppress this target's offloads for a
        // growing window so a flaky link converges to local execution.
        ctx_.dyn.recordFailure(target.name, ctx_.mobile.nowNs() * 1e-9);
        ++ctx_.failovers;
        ++ctx_.localRuns;

        double start = ctx_.mobile.nowNs();
        RtVal ret = interp.call(target.mobileFn, args);
        ctx_.dyn.observe(target.name, (ctx_.mobile.nowNs() - start) * 1e-9,
                         0);

        OffloadEvent event;
        event.target = target.name;
        event.offloaded = false;
        event.failedOver = true;
        ctx_.events.push_back(event);
        return ret;
    }

    Session::Impl &ctx_;
};

} // namespace

RunReport
Session::Impl::run(const RunInput &input)
{
    if (fleet.loop != nullptr) {
        // The client arrives on the fleet timeline at startNs; both of
        // its machines idle until then. Transfers ride the shared
        // medium from here on.
        mobile.syncTo(fleet.startNs, sim::PowerState::Idle);
        server.syncTo(fleet.startNs, sim::PowerState::Idle);
        comm.attachMedium(fleet.medium, fleet.strand);
    }

    mobile.setInput(input.stdinText);
    for (const auto &[path, contents] : input.files)
        mobile.fs().putFile(path, contents);

    const ir::Module &mobile_module = *prog.partition.mobileModule;
    const ir::Module &server_module = *prog.partition.serverModule;
    mobileImage = interp::loadProgram(mobile_module, mobile,
                                      /*write_uva_content=*/true);
    serverImage = interp::loadProgram(server_module, server,
                                      /*write_uva_content=*/false);
    server.mem().clearDirtyBits();

    // Resolve targets in both modules and seed the dynamic estimator
    // from the compile-time profile.
    for (const compiler::PartitionedTarget &target :
         prog.partition.targets) {
        TargetEntry entry;
        entry.name = target.name;
        entry.id = target.id;
        entry.mobileFn = mobile_module.functionByName(target.name);
        entry.serverFn = server_module.functionByName(target.name);
        NOL_ASSERT(entry.mobileFn != nullptr && entry.serverFn != nullptr,
                   "target %s missing after partitioning",
                   target.name.c_str());
        targetsByStub[std::string(compiler::kOffloadStubPrefix) +
                      target.name] = entry;

        const profile::RegionProfile *region =
            prog.profile.byName(target.name);
        if (region != nullptr && region->invocations > 0) {
            dyn.seed(target.name,
                     region->execSeconds() /
                         static_cast<double>(region->invocations),
                     region->memBytes());
        }
    }

    // Admission handshake with the fleet knowledge base: overlay what
    // peers already observed on top of the compile-time seeds, so a
    // late arrival never decides cold on a target the fleet knows.
    if (fleet.server != nullptr && cfg.fleetPriorsEnabled)
        priorsSeededTargets = dyn.seedFromPriors();

    MobileEnv env(*this);
    interp::Interp interp(mobile, mobile_module, mobileImage, env);
    interp.setStepLimit(cfg.stepLimit);

    ir::Function *entry_fn = mobile_module.functionByName("main");
    NOL_ASSERT(entry_fn != nullptr, "mobile module lacks main()");

    RunReport report;
    report.exitValue = interp.call(entry_fn, {}).i;

    // --- Assemble the report -------------------------------------------
    report.console = mobile.console();
    report.mobileSeconds = mobile.nowNs() * 1e-9;
    report.energyMillijoules = mobile.power().energyMillijoules();

    double server_ns_per_unit = prog.serverSpec.nsPerCostUnit;
    double fn_ptr_s =
        static_cast<double>(fnPtrUnits) * server_ns_per_unit * 1e-9;
    report.breakdown.mobileCompute =
        mobile.power().secondsInState(sim::PowerState::Compute) -
        comm.decompressSeconds();
    report.breakdown.serverCompute =
        serverComputeNs * 1e-9 - fn_ptr_s;
    report.breakdown.fnPtrTranslation = fn_ptr_s;
    report.breakdown.remoteIo = comm.secondsIn(CommCategory::RemoteIo);
    report.breakdown.communication =
        comm.secondsIn(CommCategory::Control) +
        comm.secondsIn(CommCategory::Prefetch) +
        comm.secondsIn(CommCategory::Demand) +
        comm.secondsIn(CommCategory::WriteBack) +
        comm.secondsIn(CommCategory::Digest) +
        comm.compressSeconds() + comm.decompressSeconds();

    report.wireBytes = comm.totalWireBytes();
    report.rawBytes = comm.totalRawBytes();
    for (const auto &[category, totals] : comm.totals())
        report.bytesByCategory[commCategoryName(category)] =
            totals.wireBytes;

    report.offloads = offloads;
    report.localRuns = localRuns;
    report.demandFaults = comm.demandFaults();
    report.retries = comm.totalRetries();
    report.failovers = failovers;
    report.admissionWaits = admissionWaits;
    report.admissionDenials = admissionDenials;
    report.admissionWaitSeconds = admissionWaitNs * 1e-9;
    report.digestHandshakes = digestHandshakes;
    report.prefetchPagesSent = prefetchPagesSent;
    report.prefetchPagesCached = prefetchPagesCached;
    report.queueAvoidedLocals = queueAvoidedLocals;
    report.priorsSeededTargets = priorsSeededTargets;
    report.decisions = decisionLog.take();
    for (const decision::DecisionRecord &record : report.decisions) {
        if (record.offload && record.inputs.observations == 0)
            ++report.coldStartOffloads;
    }
    report.events = events;
    report.powerTimeline = mobile.power().timeline();
    return report;
}

Session::Session(const compiler::CompiledProgram &program,
                 const SystemConfig &config)
    : impl_(new Impl(program, config, FleetHooks{}))
{
    NOL_ASSERT(program.partition.mobileModule != nullptr,
               "program was not partitioned");
}

Session::Session(const compiler::CompiledProgram &program,
                 const SystemConfig &config, const FleetHooks &hooks)
    : impl_(new Impl(program, config, hooks))
{
    NOL_ASSERT(program.partition.mobileModule != nullptr,
               "program was not partitioned");
    NOL_ASSERT(hooks.loop != nullptr && hooks.medium != nullptr &&
                   hooks.server != nullptr,
               "fleet session without fleet infrastructure");
}

Session::~Session() = default;

void
Session::setStrand(sim::Strand *strand)
{
    impl_->fleet.strand = strand;
}

RunReport
Session::run(const RunInput &input)
{
    return impl_->run(input);
}

} // namespace nol::runtime

/**
 * @file
 * The Native Offloader runtime (paper Sec. 4): executes the partitioned
 * mobile and server binaries cooperatively over the simulated network,
 * following the Fig. 5 life cycle — local execution, dynamic decision,
 * initialization (prefetch), offloading execution with copy-on-demand
 * paging and remote I/O, and finalization with compressed dirty-page
 * write-back.
 */
#ifndef NOL_RUNTIME_OFFLOAD_HPP
#define NOL_RUNTIME_OFFLOAD_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/driver.hpp"
#include "decision/record.hpp"
#include "net/simnetwork.hpp"
#include "runtime/comm.hpp"
#include "runtime/uva.hpp"
#include "sim/simmachine.hpp"

namespace nol::runtime {

/** Runtime configuration of one evaluation run. */
struct SystemConfig {
    net::NetworkSpec network;        ///< defaults to 802.11ac (fast)
    double memScale = 32.0;          ///< byte/bandwidth scale factor k
    bool compressionEnabled = true;  ///< server→mobile write-back LZ
    bool prefetchEnabled = true;     ///< initialization heap push
    bool copyOnDemand = true;        ///< false: ship ALL pages up front
    bool dynamicDecision = true;     ///< runtime Eq. 1 re-evaluation
    bool forceLocal = false;         ///< baseline: never offload
    bool idealOffload = false;       ///< zero-overhead offloading
    /**
     * Fleet mode: prefetch through the server's content-addressed page
     * cache (digest handshake, have/need, admission-wave batching).
     * Strictly opt-in and inert outside a ≥2-client fleet, so solo and
     * cache-off runs are bit-identical to the legacy paths.
     */
    bool pageCacheEnabled = false;
    /**
     * Fleet mode: seed each session's decision::Engine from the
     * server-side decision::FleetPriors knowledge base at admission,
     * so later arrivals skip the cold-start probe offloads earlier
     * sessions already paid for. Inert solo and when off: such runs
     * are bit-identical to the priors-free path.
     */
    bool fleetPriorsEnabled = false;
    /**
     * Fleet mode: admission-aware Equation 1. Each dynamic decision
     * subtracts the expected queue wait E[wait | queue depth, slot
     * pool, mean hold time] — derived from the server's live
     * ServerRuntime::loadSnapshot() — from the estimated gain, so a
     * client facing a saturated slot pool runs locally instead of
     * queueing toward an admission denial. Inert solo and when off.
     */
    bool admissionAwareDecision = false;
    uint64_t fnPtrTranslateCost = 60; ///< units per server indirect call
    uint64_t stepLimit = 4'000'000'000ull;
    /** Deterministic network fault schedule (disabled by default: the
     *  fault layer is strictly opt-in and zero-cost when off). */
    net::FaultPlan faultPlan;
    /** Per-message timeout + bounded-backoff retry policy, effective
     *  only when the fault plan is enabled. */
    RetryPolicy retry;

    SystemConfig();
};

/** Input of one run (evaluation input, distinct from profiling input). */
struct RunInput {
    std::string stdinText;
    std::map<std::string, std::string> files;
};

/** One offload decision taken at run time. */
struct OffloadEvent {
    std::string target;
    bool offloaded = false;
    bool ideal = false;
    bool failedOver = false;  ///< offload aborted mid-flight, replayed
                              ///< locally from the pre-offload snapshot
    bool suppressed = false;  ///< declined inside a failover-suppression
                              ///< window (no link probe at all)
    bool overflow = false;    ///< server admission denied (fleet mode);
                              ///< the target ran locally instead
    bool queueAvoided = false; ///< admission-aware Eq. 1 predicted a
                               ///< queue wait that erased the gain; ran
                               ///< locally without contacting the server
    double estimatedGain = 0;
    double trafficBytes = 0;     ///< wire bytes this invocation
    double rawTrafficBytes = 0;  ///< pre-compression bytes this invocation
    double serverSeconds = 0; ///< server busy time this invocation
};

/** Where the time went (drives Fig. 7). */
struct TimeBreakdown {
    double mobileCompute = 0;     ///< local computation on the device
    double serverCompute = 0;     ///< offloaded computation (pure)
    double fnPtrTranslation = 0;  ///< function-pointer mapping overhead
    double remoteIo = 0;          ///< remote I/O requests + transfers
    double communication = 0;     ///< prefetch + CoD + write-back + ctl
};

/** Everything a run produced. */
struct RunReport {
    int64_t exitValue = 0;
    std::string console;
    double mobileSeconds = 0;  ///< whole-program time (mobile clock)
    double energyMillijoules = 0;
    TimeBreakdown breakdown;

    uint64_t wireBytes = 0;       ///< after compression
    uint64_t rawBytes = 0;        ///< before compression
    std::map<std::string, uint64_t> bytesByCategory;

    uint64_t offloads = 0;
    uint64_t localRuns = 0;   ///< stub executed locally (declined)
    uint64_t demandFaults = 0;
    uint64_t retries = 0;     ///< message re-attempts over all categories
    uint64_t failovers = 0;   ///< offloads aborted and replayed locally

    // Fleet-mode admission accounting (always zero in a solo run).
    uint64_t admissionWaits = 0;   ///< offloads that queued for a slot
    uint64_t admissionDenials = 0; ///< queue waits that timed out
    double admissionWaitSeconds = 0;

    // Page-cache accounting (always zero when the cache is off).
    uint64_t digestHandshakes = 0;    ///< cache-aware prefetches
    uint64_t prefetchPagesSent = 0;   ///< prefetch pages this client sent
    uint64_t prefetchPagesCached = 0; ///< pages served without a transfer

    // Decision-stack accounting (decision::Engine provenance).
    uint64_t coldStartOffloads = 0;   ///< offload verdicts taken with zero
                                      ///< runtime observations of the target
    uint64_t queueAvoidedLocals = 0;  ///< queue-erased verdicts (ran local)
    uint64_t priorsSeededTargets = 0; ///< targets seeded from FleetPriors

    /** Every dynamic decision this run took, with full provenance:
     *  inputs, Equation 1 terms, verdict and reason. */
    std::vector<decision::DecisionRecord> decisions;

    std::vector<OffloadEvent> events;
    std::vector<sim::PowerSegment> powerTimeline;

    /** Mean wire traffic per offload in *paper-equivalent* MB. */
    double trafficPerOffloadMb(double mem_scale) const;
};

/**
 * The two-machine offloading system. Construct once per configuration;
 * each run() builds fresh machines, so runs are independent.
 */
class OffloadSystem
{
  public:
    OffloadSystem(const compiler::CompiledProgram &program,
                  SystemConfig config);

    /** Execute the program end to end. */
    RunReport run(const RunInput &input);

    const SystemConfig &config() const { return config_; }

  private:
    const compiler::CompiledProgram &program_;
    SystemConfig config_;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_OFFLOAD_HPP

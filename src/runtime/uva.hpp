/**
 * @file
 * Unified virtual address (UVA) space management (paper Sec. 3.2 / 4).
 * The UVA heap is one address range both machines agree on; each side
 * allocates from a disjoint sub-range so u_malloc never hands out the
 * same address twice even when the server allocates during offloaded
 * execution. Page *contents* flow through prefetch, copy-on-demand and
 * write-back (CommManager); this class only manages addresses.
 */
#ifndef NOL_RUNTIME_UVA_HPP
#define NOL_RUNTIME_UVA_HPP

#include "sim/heapalloc.hpp"
#include "sim/simmachine.hpp"

namespace nol::runtime {

/** Split point between the mobile and server UVA sub-heaps. */
constexpr uint64_t kUvaServerSubBase =
    sim::kUvaHeapBase + sim::kUvaHeapSize * 3 / 4;

/** Address-space manager of the unified heap. */
class UvaManager
{
  public:
    UvaManager()
        : mobile_heap_(sim::kUvaHeapBase,
                       kUvaServerSubBase - sim::kUvaHeapBase),
          server_heap_(kUvaServerSubBase,
                       sim::kUvaHeapBase + sim::kUvaHeapSize -
                           kUvaServerSubBase)
    {}

    /** u_malloc arena of the mobile device. */
    sim::HeapAllocator &mobileHeap() { return mobile_heap_; }

    /** u_malloc arena of the server (disjoint sub-range). */
    sim::HeapAllocator &serverHeap() { return server_heap_; }

    /** True if @p addr lies anywhere in the UVA heap or globals. */
    static bool
    isUvaAddress(uint64_t addr)
    {
        return (addr >= sim::kUvaHeapBase &&
                addr < sim::kUvaHeapBase + sim::kUvaHeapSize) ||
               (addr >= 0x3000'0000ull && addr < sim::kUvaHeapBase);
    }

    /** Highest mobile-sub-heap address ever allocated. */
    uint64_t mobileHighWater() const { return mobile_heap_.highWater(); }

  private:
    sim::HeapAllocator mobile_heap_;
    sim::HeapAllocator server_heap_;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_UVA_HPP

/**
 * @file
 * Unified virtual address (UVA) space management (paper Sec. 3.2 / 4).
 * The UVA heap is one address range both machines agree on; each side
 * allocates from a disjoint sub-range so u_malloc never hands out the
 * same address twice even when the server allocates during offloaded
 * execution. Page *contents* flow through prefetch, copy-on-demand and
 * write-back (CommManager); this class only manages addresses.
 *
 * In a multi-client fleet every session gets a private UvaManager from
 * the ServerRuntime — its UVA namespace — so concurrent offloading
 * processes can never alias each other's unified addresses.
 */
#ifndef NOL_RUNTIME_UVA_HPP
#define NOL_RUNTIME_UVA_HPP

#include <string>
#include <vector>

#include "sim/heapalloc.hpp"
#include "sim/simmachine.hpp"

namespace nol::runtime {

/** Base of the UVA globals range (mirrors interp::kUvaGlobalBase). */
constexpr uint64_t kUvaGlobalsBase = 0x3000'0000ull;

/** Split point between the mobile and server UVA sub-heaps. */
constexpr uint64_t kUvaServerSubBase =
    sim::kUvaHeapBase + sim::kUvaHeapSize * 3 / 4;

/** One named range of the unified address space. */
struct UvaRegion {
    std::string name;
    uint64_t base = 0;
    uint64_t size = 0;

    bool
    contains(uint64_t addr) const
    {
        return addr >= base && addr - base < size;
    }
};

/** Address-space manager of the unified heap. */
class UvaManager
{
  public:
    UvaManager()
        : mobile_heap_(sim::kUvaHeapBase,
                       kUvaServerSubBase - sim::kUvaHeapBase),
          server_heap_(kUvaServerSubBase,
                       sim::kUvaHeapBase + sim::kUvaHeapSize -
                           kUvaServerSubBase)
    {
        // The canonical unified ranges both machines agree on. Region
        // union == the legacy "globals or heap" predicate, exactly.
        addRegion("uva-globals", kUvaGlobalsBase,
                  sim::kUvaHeapBase - kUvaGlobalsBase);
        addRegion("uva-heap-mobile", sim::kUvaHeapBase,
                  kUvaServerSubBase - sim::kUvaHeapBase);
        addRegion("uva-heap-server", kUvaServerSubBase,
                  sim::kUvaHeapBase + sim::kUvaHeapSize - kUvaServerSubBase);
    }

    /** u_malloc arena of the mobile device. */
    sim::HeapAllocator &mobileHeap() { return mobile_heap_; }

    /** u_malloc arena of the server (disjoint sub-range). */
    sim::HeapAllocator &serverHeap() { return server_heap_; }

    /**
     * Register a named range. Rejects (returns false) empty ranges,
     * address wrap-around, and any overlap with an existing region —
     * unified addresses must mean one thing.
     */
    bool
    addRegion(const std::string &name, uint64_t base, uint64_t size)
    {
        if (size == 0 || base + size < base)
            return false;
        for (const UvaRegion &region : regions_) {
            if (base < region.base + region.size &&
                region.base < base + size)
                return false;
        }
        regions_.push_back({name, base, size});
        return true;
    }

    /** Region containing @p addr, or nullptr when unmapped. */
    const UvaRegion *
    regionOf(uint64_t addr) const
    {
        for (const UvaRegion &region : regions_) {
            if (region.contains(addr))
                return &region;
        }
        return nullptr;
    }

    /**
     * Region containing the first byte of page @p page_num, or nullptr.
     * Unified pages are exactly the ones with a named region; the
     * session's prefetch collector and the server page cache both key
     * off this predicate.
     */
    const UvaRegion *
    regionOfPage(uint64_t page_num) const
    {
        return regionOf(page_num * sim::kPageSize);
    }

    /**
     * Translate @p addr to (region, offset). Returns false — leaving
     * the outputs untouched — when the address is unmapped.
     */
    bool
    translate(uint64_t addr, const UvaRegion **region,
              uint64_t *offset) const
    {
        const UvaRegion *found = regionOf(addr);
        if (found == nullptr)
            return false;
        if (region != nullptr)
            *region = found;
        if (offset != nullptr)
            *offset = addr - found->base;
        return true;
    }

    const std::vector<UvaRegion> &regions() const { return regions_; }

    /** True if @p addr lies anywhere in the UVA heap or globals. */
    static bool
    isUvaAddress(uint64_t addr)
    {
        return (addr >= sim::kUvaHeapBase &&
                addr < sim::kUvaHeapBase + sim::kUvaHeapSize) ||
               (addr >= kUvaGlobalsBase && addr < sim::kUvaHeapBase);
    }

    /** Highest mobile-sub-heap address ever allocated. */
    uint64_t mobileHighWater() const { return mobile_heap_.highWater(); }

  private:
    sim::HeapAllocator mobile_heap_;
    sim::HeapAllocator server_heap_;
    std::vector<UvaRegion> regions_;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_UVA_HPP

/**
 * @file
 * Pluggable admission policies for the offload server.
 *
 * PR "fleet scale substrate": ServerRuntime's admission queue used to
 * be hardwired FIFO — a released slot always passed to the head
 * waiter. Under open-loop traffic (thousands of Poisson arrivals, see
 * src/traffic) the *order* in which queued offloads inherit freed
 * slots dominates tail latency, so slot inheritance is now a strategy
 * object: ServerRuntime keeps the queue, the timers and the load
 * ledger, and asks an AdmissionPolicy only one question — "a slot just
 * freed; which waiter gets it?".
 *
 * Four built-in answers:
 *
 *  - Fifo: index 0, always. The default, bit-identical to the
 *    pre-refactor hardwired queue (the equivalence sweep in
 *    tests/test_fleet.cpp pins this against the preserved legacy
 *    path).
 *  - Priority: highest FleetClient::priority first, FIFO among equals.
 *  - ShortestPredictedFirst: smallest predicted slot-hold time first,
 *    fed by the Eq. 1 terms of the decision that triggered the offload
 *    (predicted hold = Ts + Tc = (Tm - Tideal) + Tc); requests with no
 *    prediction (dynamic decision off) sort as 0 — i.e. to the front,
 *    FIFO among themselves.
 *  - FairShare: fewest previous grants for that session first, FIFO
 *    among equals — a long-session client cannot starve fresh ones.
 *
 * Policies are consulted inside loop events only, so they may keep
 * internal state (FairShare's grant counts) without any locking.
 */
#ifndef NOL_RUNTIME_ADMISSION_HPP
#define NOL_RUNTIME_ADMISSION_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

namespace nol::runtime {

/** Which slot-inheritance strategy the server runs. */
enum class AdmissionPolicyKind {
    Fifo,                   ///< arrival order (default; legacy behavior)
    Priority,               ///< FleetClient::priority, FIFO among equals
    ShortestPredictedFirst, ///< smallest Eq. 1 predicted hold first
    FairShare,              ///< fewest grants per session first
};

/** Stable lowercase name ("fifo", "spjf", ...) for tables and JSON. */
const char *admissionPolicyKindName(AdmissionPolicyKind kind);

/**
 * Optional elastic slot pool. When enabled the server grows its pool
 * by one slot whenever a request would queue behind more than
 * queueDepthPerSlot waiters per current slot, up to maxSessions, and
 * shrinks back toward the configured base as slots free with an empty
 * queue. Disabled (the default) the pool is constant and runs are
 * bit-identical to the fixed-pool server.
 */
struct AdmissionAutoscale {
    bool enabled = false;
    uint32_t maxSessions = 0;       ///< ceiling; 0 = 4x the base pool
    double queueDepthPerSlot = 2.0; ///< grow past this backlog per slot
};

/**
 * Admission configuration (the former `AdmissionPolicy` limits struct,
 * renamed when AdmissionPolicy became the strategy interface below).
 */
struct AdmissionConfig {
    uint32_t maxConcurrentSessions = 8;
    double maxQueueWaitSeconds = 5.0; ///< then denied → run locally
    AdmissionPolicyKind kind = AdmissionPolicyKind::Fifo;
    AdmissionAutoscale autoscale;
    /**
     * Test-only oracle: run the pre-refactor inline FIFO admission
     * path verbatim — no policy object, no autoscaling. The
     * equivalence sweep compares this against kind == Fifo through the
     * interface; it is not a supported production mode.
     */
    bool legacyFifoPath = false;
};

/** What the requesting session declared at acquire() time. */
struct AdmissionRequest {
    int priority = 0; ///< FleetClient::priority (higher = sooner)
    /**
     * Predicted slot-hold seconds for the offload being admitted,
     * from the Eq. 1 terms of the decision that chose to offload:
     * (Tm - Tideal) + Tc. Zero when no estimate exists.
     */
    double predictedHoldSeconds = 0;
};

/** One queued admission request, as policies see it. */
struct AdmissionTicket {
    uint64_t sessionId = 0;
    double enqueueNs = 0;
    AdmissionRequest request;
};

/**
 * Slot-inheritance strategy. ServerRuntime owns the queue and calls
 * selectNext() from inside a release event when a slot frees with
 * waiters queued; the returned index is granted and removed. One
 * policy instance lives per ServerRuntime and is reset() at the start
 * of every run().
 */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;

    /** The kind this instance implements. */
    virtual AdmissionPolicyKind kind() const = 0;

    /** Stable display name (admissionPolicyKindName of kind()). */
    const char *name() const { return admissionPolicyKindName(kind()); }

    /**
     * Index into @p queue (never empty) of the waiter that inherits
     * the freed slot. Ties must preserve arrival order: scan front to
     * back and only move the pick on a strict improvement.
     */
    virtual size_t selectNext(const std::deque<AdmissionTicket> &queue) = 0;

    /** A slot was granted to @p session_id (immediate or queued). */
    virtual void onGrant(uint64_t session_id) { (void)session_id; }

    /** Forget all run-scoped state (called at run() start). */
    virtual void reset() {}
};

/** Build the built-in policy implementing @p kind. */
std::unique_ptr<AdmissionPolicy> makeAdmissionPolicy(AdmissionPolicyKind kind);

} // namespace nol::runtime

#endif // NOL_RUNTIME_ADMISSION_HPP

#include "runtime/admission.hpp"

#include "support/logging.hpp"

namespace nol::runtime {

const char *
admissionPolicyKindName(AdmissionPolicyKind kind)
{
    switch (kind) {
    case AdmissionPolicyKind::Fifo:
        return "fifo";
    case AdmissionPolicyKind::Priority:
        return "priority";
    case AdmissionPolicyKind::ShortestPredictedFirst:
        return "spjf";
    case AdmissionPolicyKind::FairShare:
        return "fair";
    }
    return "?";
}

namespace {

class FifoPolicy final : public AdmissionPolicy
{
  public:
    AdmissionPolicyKind kind() const override
    {
        return AdmissionPolicyKind::Fifo;
    }

    size_t selectNext(const std::deque<AdmissionTicket> &queue) override
    {
        NOL_ASSERT(!queue.empty(), "selectNext on an empty queue");
        return 0;
    }
};

class PriorityPolicy final : public AdmissionPolicy
{
  public:
    AdmissionPolicyKind kind() const override
    {
        return AdmissionPolicyKind::Priority;
    }

    size_t selectNext(const std::deque<AdmissionTicket> &queue) override
    {
        NOL_ASSERT(!queue.empty(), "selectNext on an empty queue");
        size_t best = 0;
        for (size_t i = 1; i < queue.size(); ++i) {
            if (queue[i].request.priority > queue[best].request.priority)
                best = i;
        }
        return best;
    }
};

class ShortestPredictedFirstPolicy final : public AdmissionPolicy
{
  public:
    AdmissionPolicyKind kind() const override
    {
        return AdmissionPolicyKind::ShortestPredictedFirst;
    }

    size_t selectNext(const std::deque<AdmissionTicket> &queue) override
    {
        NOL_ASSERT(!queue.empty(), "selectNext on an empty queue");
        size_t best = 0;
        for (size_t i = 1; i < queue.size(); ++i) {
            if (queue[i].request.predictedHoldSeconds <
                queue[best].request.predictedHoldSeconds)
                best = i;
        }
        return best;
    }
};

class FairSharePolicy final : public AdmissionPolicy
{
  public:
    AdmissionPolicyKind kind() const override
    {
        return AdmissionPolicyKind::FairShare;
    }

    size_t selectNext(const std::deque<AdmissionTicket> &queue) override
    {
        NOL_ASSERT(!queue.empty(), "selectNext on an empty queue");
        size_t best = 0;
        uint64_t best_grants = grantsOf(queue[0].sessionId);
        for (size_t i = 1; i < queue.size(); ++i) {
            uint64_t grants = grantsOf(queue[i].sessionId);
            if (grants < best_grants) {
                best = i;
                best_grants = grants;
            }
        }
        return best;
    }

    void onGrant(uint64_t session_id) override { ++grants_[session_id]; }

    void reset() override { grants_.clear(); }

  private:
    uint64_t grantsOf(uint64_t session_id) const
    {
        auto it = grants_.find(session_id);
        return it == grants_.end() ? 0 : it->second;
    }

    std::unordered_map<uint64_t, uint64_t> grants_;
};

} // namespace

std::unique_ptr<AdmissionPolicy>
makeAdmissionPolicy(AdmissionPolicyKind kind)
{
    switch (kind) {
    case AdmissionPolicyKind::Fifo:
        return std::make_unique<FifoPolicy>();
    case AdmissionPolicyKind::Priority:
        return std::make_unique<PriorityPolicy>();
    case AdmissionPolicyKind::ShortestPredictedFirst:
        return std::make_unique<ShortestPredictedFirstPolicy>();
    case AdmissionPolicyKind::FairShare:
        return std::make_unique<FairSharePolicy>();
    }
    NOL_ASSERT(false, "unknown admission policy kind");
    return nullptr;
}

} // namespace nol::runtime

/**
 * @file
 * The multi-client offload server runtime: owns the fleet's shared
 * discrete-event timeline (sim::EventLoop), the contended wireless
 * medium (net::SharedMedium), per-session UVA namespaces, and admission
 * control bounding how many offloading processes run concurrently.
 *
 * Admission policy: FIFO. An offload that arrives while all slots are
 * busy queues; a released slot passes directly to the head waiter. A
 * waiter that queues longer than the policy's timeout is denied and the
 * session runs that target locally instead (overflow) — the fleet
 * degrades to local execution under load rather than deadlocking.
 */
#ifndef NOL_RUNTIME_SERVER_HPP
#define NOL_RUNTIME_SERVER_HPP

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/session.hpp"
#include "runtime/uva.hpp"

namespace nol::runtime {

/** How many offloading processes the server accepts at once. */
struct AdmissionPolicy {
    uint32_t maxConcurrentSessions = 8;
    double maxQueueWaitSeconds = 5.0; ///< then denied → run locally
};

/** Outcome of one admission request. */
struct AdmissionResult {
    bool granted = false;
    double wakeNs = 0;   ///< virtual time the decision was delivered
    double waitedNs = 0; ///< time spent queued (0 = immediate grant)
};

/** One client of a fleet run. */
struct FleetClient {
    std::string name;
    SystemConfig config;
    RunInput input;
    double startSeconds = 0; ///< arrival time on the fleet timeline
};

/** One client's outcome. */
struct FleetClientResult {
    std::string name;
    RunReport report;
    double startSeconds = 0;
    double finishSeconds = 0;
    double latencySeconds = 0; ///< finish − start
};

/** Aggregate outcome of one fleet run. */
struct FleetReport {
    std::vector<FleetClientResult> clients;
    double makespanSeconds = 0; ///< latest client finish
    uint64_t totalOffloads = 0;
    uint64_t totalLocalRuns = 0;
    uint64_t totalFailovers = 0;
    uint64_t admissionWaits = 0;
    uint64_t admissionDenials = 0;
    double admissionWaitSeconds = 0;
    double serverBusySeconds = 0;  ///< Σ per-session server compute
    double mediumBusySeconds = 0;  ///< virtual time with ≥1 flow in air
    double offloadsPerSecond = 0;  ///< totalOffloads / makespan
    double latencyP50Seconds = 0;
    double latencyP95Seconds = 0;
    uint32_t peakConcurrentSessions = 0; ///< admitted at once
    uint32_t peakConcurrentFlows = 0;    ///< medium contention peak
};

/** The offload server plus the fleet harness around it. */
class ServerRuntime
{
  public:
    explicit ServerRuntime(const compiler::CompiledProgram &program,
                           AdmissionPolicy policy = {});
    ~ServerRuntime();

    /** Simulate @p clients against one server; blocks until done. */
    FleetReport run(const std::vector<FleetClient> &clients);

    // --- Session-facing interface (called from session strands) --------

    /**
     * Request a server slot at virtual time @p now_ns. Cooperatively
     * blocks the strand until granted or denied (queue timeout).
     */
    AdmissionResult acquire(sim::Strand &strand, uint64_t session_id,
                            double now_ns);

    /** Return a slot; the head waiter (if any) inherits it directly. */
    void release(uint64_t session_id, double now_ns);

    /** The per-session UVA namespace (created on first use). */
    UvaManager &namespaceFor(uint64_t session_id);

    const AdmissionPolicy &policy() const { return policy_; }

  private:
    struct Waiter {
        sim::Strand *strand = nullptr;
        AdmissionResult *result = nullptr;
        double enqueueNs = 0;
        uint64_t timeoutEvent = 0;
    };

    void grant(Waiter waiter, double now_ns);

    const compiler::CompiledProgram &program_;
    AdmissionPolicy policy_;

    // Valid only during run() (the fleet's shared infrastructure).
    sim::EventLoop *loop_ = nullptr;

    uint32_t active_ = 0;
    std::deque<Waiter> queue_;
    std::map<uint64_t, std::unique_ptr<UvaManager>> namespaces_;

    uint64_t admission_waits_ = 0;
    uint64_t admission_denials_ = 0;
    double admission_wait_ns_ = 0;
    uint32_t peak_active_ = 0;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_SERVER_HPP

/**
 * @file
 * The multi-client offload server runtime: owns the fleet's shared
 * discrete-event timeline (sim::EventLoop), the contended wireless
 * medium (net::SharedMedium), per-session UVA namespaces, and admission
 * control bounding how many offloading processes run concurrently.
 *
 * Admission: an offload that arrives while all slots are busy queues;
 * a released slot passes to the waiter the configured AdmissionPolicy
 * picks (FIFO by default — see runtime/admission.hpp for the policy
 * catalog and the optional autoscaling slot pool). A waiter that
 * queues longer than the configured timeout is denied and the session
 * runs that target locally instead (overflow) — the fleet degrades to
 * local execution under load rather than deadlocking.
 */
#ifndef NOL_RUNTIME_SERVER_HPP
#define NOL_RUNTIME_SERVER_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "decision/model.hpp"
#include "decision/priors.hpp"
#include "runtime/admission.hpp"
#include "runtime/session.hpp"
#include "runtime/uva.hpp"
#include "sim/pagedmemory.hpp"

namespace nol::runtime {

/** Server-side content-addressed page cache + prefetch batching knobs. */
struct PageCachePolicy {
    bool enabled = true;       ///< master switch (sessions also opt in)
    uint64_t capacityPages = 8192; ///< LRU eviction bound (32 MiB)
    /**
     * Admission-wave coalescing window: prefetches registering within
     * this span of the wave's first registrant flush together, and the
     * wave's union of unique pages crosses the medium once.
     */
    double batchWindowSeconds = 0.002;
};

/** What the page cache and the prefetch batcher saw over one run. */
struct PageCacheStats {
    uint64_t lookups = 0;        ///< digests probed by handshakes
    uint64_t hitPages = 0;       ///< served straight from the cache
    uint64_t coalescedPages = 0; ///< deduped against an in-flight wave
    uint64_t missPages = 0;      ///< assigned to a carrier (transferred)
    uint64_t insertedPages = 0;
    uint64_t evictedPages = 0;
    uint64_t prefetchWaves = 0;    ///< admission waves flushed
    uint64_t batchedSessions = 0;  ///< members of multi-session waves
};

/**
 * Content-addressed store of page contents the server has already
 * received, keyed by digest of the endianness-normalized (unified-ABI)
 * page bytes. Identical read-only pages — globals, code-adjacent
 * tables — of clients running the same binary therefore hit regardless
 * of which session pushed them first. No invalidation protocol is
 * needed for correctness: a page dirtied by one session gets a new
 * digest and simply misses, while the old entry keeps serving sessions
 * that still hold the old content until LRU eviction retires it.
 */
class PageCache
{
  public:
    explicit PageCache(uint64_t capacity_pages)
        : capacity_(capacity_pages)
    {}

    /** True if @p digest is cached (no LRU bump, no stats). */
    bool contains(const sim::PageDigest &digest) const
    {
        return entries_.count(digest) != 0;
    }

    /**
     * Bytes of the cached page for @p digest (bumping its LRU slot),
     * or nullptr on miss.
     */
    const uint8_t *lookup(const sim::PageDigest &digest);

    /** Admit @p data under @p digest, evicting LRU entries if full. */
    void insert(const sim::PageDigest &digest, const uint8_t *data);

    /** Drop one entry (explicit invalidation). */
    void invalidate(const sim::PageDigest &digest);

    uint64_t pages() const { return entries_.size(); }
    uint64_t insertedPages() const { return inserted_; }
    uint64_t evictedPages() const { return evicted_; }

  private:
    struct Entry {
        std::vector<uint8_t> bytes;
        uint64_t tick = 0; ///< LRU stamp (monotone use counter)
    };

    uint64_t capacity_;
    uint64_t tick_ = 0;
    std::unordered_map<sim::PageDigest, Entry, sim::PageDigestHash>
        entries_;
    std::map<uint64_t, sim::PageDigest> lru_; ///< tick → digest
    uint64_t inserted_ = 0;
    uint64_t evicted_ = 0;
};

/** One page a session offers to (or wants from) the server cache. */
struct PrefetchOffer {
    uint64_t pageNum = 0;
    sim::PageDigest digest;
};

/** The batcher's answer to one session's digest handshake. */
struct PrefetchPlan {
    uint64_t waveId = 0;
    double flushNs = 0; ///< virtual time the wave flushed (wake time)
    std::vector<PrefetchOffer> carry;  ///< "need": this session transfers
    std::vector<PrefetchOffer> cached; ///< "have": cache / peers / waves
    std::vector<uint64_t> dependsOnWaves; ///< carriers still in flight
};

/** Outcome of one admission request. */
struct AdmissionResult {
    bool granted = false;
    double wakeNs = 0;   ///< virtual time the decision was delivered
    double waitedNs = 0; ///< time spent queued (0 = immediate grant)
};

/** One client of a fleet run. */
struct FleetClient {
    std::string name;
    SystemConfig config;
    RunInput input;
    double startSeconds = 0; ///< arrival time on the fleet timeline
    int priority = 0; ///< admission priority (Priority policy only)
    /**
     * Program this client runs; nullptr = the server's program. Lets
     * one fleet carry a heavy-tailed mix of workloads (src/traffic) —
     * page sharing still works because the cache is content-addressed.
     */
    const compiler::CompiledProgram *program = nullptr;
};

/** One client's outcome. */
struct FleetClientResult {
    std::string name;
    RunReport report;
    double startSeconds = 0;
    double finishSeconds = 0;
    double latencySeconds = 0; ///< finish − start
};

/** Aggregate outcome of one fleet run. */
struct FleetReport {
    std::vector<FleetClientResult> clients;
    double makespanSeconds = 0; ///< latest client finish
    uint64_t totalOffloads = 0;
    uint64_t totalLocalRuns = 0;
    uint64_t totalFailovers = 0;
    uint64_t admissionWaits = 0;
    uint64_t admissionDenials = 0;
    double admissionWaitSeconds = 0;
    double serverBusySeconds = 0;  ///< Σ per-session server compute
    double mediumBusySeconds = 0;  ///< virtual time with ≥1 flow in air
    uint64_t mediumBytes = 0;      ///< payload bytes the channel carried
    double offloadsPerSecond = 0;  ///< totalOffloads / makespan
    double latencyP50Seconds = 0;
    double latencyP95Seconds = 0;
    double latencyP99Seconds = 0;
    double latencyP999Seconds = 0;
    uint32_t peakConcurrentSessions = 0; ///< admitted at once
    uint32_t peakConcurrentFlows = 0;    ///< medium contention peak
    PageCacheStats cache;                ///< all-zero when cache is off

    // Decision-stack accounting (all-zero when both flags are off).
    uint64_t priorsSeededSessions = 0;   ///< sessions seeded ≥1 target
    uint64_t priorsSeededTargets = 0;    ///< Σ targets seeded from priors
    uint64_t totalColdStartOffloads = 0; ///< Σ zero-observation offloads
    uint64_t totalQueueAvoidedLocals = 0; ///< Σ queue-erased verdicts
};

/** The offload server plus the fleet harness around it. */
class ServerRuntime
{
  public:
    explicit ServerRuntime(const compiler::CompiledProgram &program,
                           AdmissionConfig admission = {},
                           PageCachePolicy cache_policy = {});
    ~ServerRuntime();

    /** Simulate @p clients against one server; blocks until done. */
    FleetReport run(const std::vector<FleetClient> &clients);

    /**
     * Observe every loadSnapshot() republication, stamped with the
     * virtual time of the triggering event. The traffic harness uses
     * this to record the queue-depth time series; pass nullptr to
     * detach. Purely observational — installs no behavior change.
     */
    using LoadObserver =
        std::function<void(double now_ns, const decision::LoadSnapshot &)>;
    void setLoadObserver(LoadObserver observer)
    {
        load_observer_ = std::move(observer);
    }

    // --- Session-facing interface (called from session strands) --------

    /**
     * Request a server slot at virtual time @p now_ns. Cooperatively
     * blocks the strand until granted or denied (queue timeout).
     * @p request carries what the admission policy may weigh: the
     * client's priority and the Eq. 1 predicted hold time.
     */
    AdmissionResult acquire(sim::Strand &strand, uint64_t session_id,
                            double now_ns, AdmissionRequest request = {});

    /** Return a slot; a queued waiter (policy's pick) inherits it. */
    void release(uint64_t session_id, double now_ns);

    /**
     * A session's client vanished (network churn): drop its queued
     * admission request, if any, waking the strand with a denial; a
     * slot it already holds is released. Safe to call for sessions
     * that are neither queued nor holding — it is then a no-op. Keeps
     * loadSnapshot() consistent (no leaked slots or ghost waiters).
     */
    void disconnect(uint64_t session_id, double now_ns);

    /**
     * The server's live load, republished on every grant, queue change
     * and release: slot pool size, active sessions, queue depth and the
     * mean slot-hold time of completed holds. Sessions read it
     * synchronously (single-threaded event loop, no tearing) to feed
     * the admission-aware queue-wait term of Equation 1.
     */
    const decision::LoadSnapshot &loadSnapshot() const { return load_; }

    /**
     * Fleet-wide per-target knowledge base (speed ratio observations,
     * per-invocation seconds, traffic, failure history) aggregated
     * across sessions. New sessions seed their decision::Engine from it
     * at admission when SystemConfig::fleetPriorsEnabled. Reset at the
     * start of every run().
     */
    decision::FleetPriors &fleetPriors() { return priors_; }

    /** The per-session UVA namespace (created on first use). */
    UvaManager &namespaceFor(uint64_t session_id);

    const AdmissionConfig &admissionConfig() const { return admission_; }
    const PageCachePolicy &cachePolicy() const { return cache_policy_; }

    /**
     * Test-only: bind the admission machinery to an external event
     * loop and reset its run-scoped state, so unit tests can exercise
     * acquire()/release()/disconnect() from raw strands without a full
     * fleet run. Detach by passing nullptr before the loop dies.
     */
    void attachLoopForTesting(sim::EventLoop *loop);

    // --- Page cache + prefetch batching (called from session strands) --
    //
    // Life cycle of one cache-aware prefetch: the session wires its
    // digest list, calls planPrefetch() (blocks until the admission
    // wave flushes and returns the have/need split), transfers only
    // its `carry` slice, then finishPrefetch() (arrival barrier: the
    // carried bytes enter the cache and the strand blocks until every
    // carrier this plan relies on has arrived or aborted), and finally
    // collectCachedPages() installs the `cached` pages server-side
    // without any bytes on the medium. A carrier whose slice transfer
    // fails calls abortPrefetch() instead so peers never deadlock —
    // pages it was carrying simply stay missing and are backfilled by
    // copy-on-demand.

    /** True when this run shares pages (≥2 clients and cache enabled). */
    bool cacheActive() const { return cache_active_; }

    /**
     * Register @p offers with the current admission wave and block the
     * strand until the wave flushes; returns the have/need plan.
     */
    PrefetchPlan planPrefetch(sim::Strand &strand, uint64_t session_id,
                              double now_ns,
                              std::vector<PrefetchOffer> offers);

    /**
     * Arrival barrier: admit this session's @p carried pages (bytes
     * read from @p server_mem) to the cache, then block until the own
     * wave and every wave in @p depends_on completed. Returns the
     * barrier-release virtual time.
     */
    double finishPrefetch(sim::Strand &strand, uint64_t wave_id,
                          const std::vector<uint64_t> &depends_on,
                          double now_ns,
                          const std::vector<PrefetchOffer> &carried,
                          const sim::PagedMemory &server_mem);

    /**
     * A carrier's slice transfer failed mid-flight: release its
     * pending digests and count it as arrived so the wave completes.
     */
    void abortPrefetch(uint64_t wave_id,
                       const std::vector<PrefetchOffer> &carried,
                       double now_ns);

    /**
     * Install every @p wanted page whose digest is cached into
     * @p server_mem (no medium bytes). Returns the served page
     * numbers; missing ones stay absent for copy-on-demand.
     */
    std::vector<uint64_t>
    collectCachedPages(sim::Strand &strand, double now_ns,
                       const std::vector<PrefetchOffer> &wanted,
                       sim::PagedMemory &server_mem);

    /**
     * Write-back ledger admission: at finalization the server already
     * holds the pages it just wrote back, so their contents enter the
     * cache for free. This is what de-duplicates a failover-reconnect
     * prefetch against state the server has already seen. @p contents
     * are owned copies (the caller's memory may change before the
     * event fires).
     */
    void admitWriteBack(double now_ns, std::vector<PrefetchOffer> pages,
                        std::vector<std::vector<uint8_t>> contents);

  private:
    struct Waiter {
        sim::Strand *strand = nullptr;
        AdmissionResult *result = nullptr;
        uint64_t sessionId = 0;
        double enqueueNs = 0;
        uint64_t timeoutEvent = 0;
        AdmissionRequest request;
    };

    /** One admission wave of the prefetch batcher. */
    struct PrefetchWave {
        uint64_t id = 0;
        bool flushed = false;
        bool done = false;
        double doneNs = 0;
        uint32_t expected = 0;
        uint32_t arrived = 0;
        struct Member {
            sim::Strand *strand = nullptr;
            uint64_t sessionId = 0;
            std::vector<PrefetchOffer> offers;
            PrefetchPlan *plan = nullptr;
        };
        std::vector<Member> members;
    };

    /** A strand parked until a set of waves completes. */
    struct WaveWaiter {
        sim::Strand *strand = nullptr;
        std::set<uint64_t> remaining;
    };

    void grant(Waiter waiter, double now_ns);
    void grantSelected(double now_ns);
    void publishLoad(double now_ns);
    void maybeShrinkPool();
    void flushWave(uint64_t wave_id, double now_ns);
    void waveArrived(uint64_t wave_id, double now_ns);

    const compiler::CompiledProgram &program_;
    AdmissionConfig admission_;
    PageCachePolicy cache_policy_;
    std::unique_ptr<AdmissionPolicy> policy_; ///< slot-inheritance strategy

    // Valid only during run() (the fleet's shared infrastructure).
    sim::EventLoop *loop_ = nullptr;

    uint32_t active_ = 0;
    uint32_t slots_ = 0; ///< live pool size (== config unless autoscaled)
    std::deque<Waiter> queue_;
    std::unordered_map<uint64_t, std::unique_ptr<UvaManager>> namespaces_;

    uint64_t admission_waits_ = 0;
    uint64_t admission_denials_ = 0;
    double admission_wait_ns_ = 0;
    uint32_t peak_active_ = 0;

    // Live load bookkeeping behind loadSnapshot(). Hold times are
    // measured grant→release per session; the mean feeds E[wait].
    decision::LoadSnapshot load_;
    LoadObserver load_observer_;
    std::unordered_map<uint64_t, double>
        hold_start_ns_; ///< session → grant time
    double hold_total_ns_ = 0;
    uint64_t hold_count_ = 0;

    // Fleet-shared decision priors (run-scoped, see fleetPriors()).
    decision::FleetPriors priors_;

    // Page cache + batcher (run-scoped like the admission state).
    bool cache_active_ = false;
    std::unique_ptr<PageCache> cache_;
    std::map<uint64_t, PrefetchWave> waves_;
    uint64_t open_wave_ = 0; ///< unflushed wave id, 0 = none
    uint64_t next_wave_ = 1;
    /** Digests assigned to an in-flight carrier: digest → wave. */
    std::unordered_map<sim::PageDigest, uint64_t, sim::PageDigestHash>
        pending_;
    std::vector<WaveWaiter> wave_waiters_;
    PageCacheStats cache_stats_;
};

} // namespace nol::runtime

#endif // NOL_RUNTIME_SERVER_HPP

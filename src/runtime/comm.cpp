#include "runtime/comm.hpp"

#include "compress/lz.hpp"
#include "sim/costmodel.hpp"

namespace nol::runtime {

namespace {

/** Per-page wire header (page number + length). */
constexpr uint64_t kPageHeader = 16;

/** Compression cost: ~4 bytes per cost unit on the compressor. */
uint64_t
compressCost(uint64_t bytes)
{
    return bytes / 4;
}

/** Decompression is ~4x cheaper (paper Sec. 4). */
uint64_t
decompressCost(uint64_t bytes)
{
    return bytes / 16;
}

} // namespace

const char *
commCategoryName(CommCategory category)
{
    switch (category) {
      case CommCategory::Control: return "control";
      case CommCategory::Prefetch: return "prefetch";
      case CommCategory::Demand: return "copy-on-demand";
      case CommCategory::WriteBack: return "write-back";
      case CommCategory::RemoteIo: return "remote-io";
    }
    return "?";
}

CommManager::CommManager(sim::SimMachine &mobile, sim::SimMachine &server,
                         net::SimNetwork &network, bool compression_enabled)
    : mobile_(mobile), server_(server), network_(network),
      compression_(compression_enabled)
{
}

void
CommManager::syncClocks()
{
    double t = std::max(mobile_.nowNs(), server_.nowNs());
    mobile_.syncTo(t, sim::PowerState::Waiting);
    server_.syncTo(t, sim::PowerState::Idle);
}

double
CommManager::transferMobileToServer(uint64_t bytes, bool unscaled)
{
    syncClocks();
    double ns =
        unscaled
            ? network_.transferUnscaled(net::Direction::MobileToServer,
                                        bytes)
            : network_.transfer(net::Direction::MobileToServer, bytes);
    mobile_.advanceTime(ns, sim::PowerState::Transmit);
    server_.advanceTime(ns, sim::PowerState::Idle);
    return ns;
}

double
CommManager::transferServerToMobile(uint64_t bytes, bool unscaled)
{
    syncClocks();
    double ns =
        unscaled
            ? network_.transferUnscaled(net::Direction::ServerToMobile,
                                        bytes)
            : network_.transfer(net::Direction::ServerToMobile, bytes);
    mobile_.advanceTime(ns, sim::PowerState::Receive);
    server_.advanceTime(ns, sim::PowerState::Idle);
    return ns;
}

void
CommManager::account(CommCategory category, uint64_t wire, uint64_t raw,
                     double ns)
{
    CommTotals &totals = totals_[category];
    ++totals.messages;
    totals.wireBytes += wire;
    totals.rawBytes += raw;
    totals.seconds += ns * 1e-9;
}

void
CommManager::sendToServer(uint64_t bytes, CommCategory category)
{
    double ns = transferMobileToServer(
        bytes, category == CommCategory::RemoteIo);
    account(category, bytes, bytes, ns);
}

void
CommManager::sendToMobile(uint64_t raw_bytes, CommCategory category,
                          bool compressible,
                          const std::vector<uint8_t> *payload)
{
    uint64_t wire = raw_bytes;
    if (compression_ && compressible && raw_bytes > 0) {
        if (payload != nullptr) {
            wire = compress::lzCompress(*payload).size();
        } else {
            wire = raw_bytes / 2; // conservative default ratio
        }
        compress_units_server_ += compressCost(raw_bytes);
        server_.advanceCompute(compressCost(raw_bytes));
    }
    double ns = transferServerToMobile(
        wire, category == CommCategory::RemoteIo);
    if (compression_ && compressible && raw_bytes > 0) {
        decompress_units_mobile_ += decompressCost(raw_bytes);
        mobile_.advanceCompute(decompressCost(raw_bytes));
    }
    account(category, wire, raw_bytes, ns);
}

void
CommManager::pushPagesToServer(const std::vector<uint64_t> &pages,
                               CommCategory category)
{
    if (pages.empty())
        return;
    // Batched: one message carries every page (the paper's batching
    // amortizes per-message overheads).
    uint64_t bytes = pages.size() * (sim::kPageSize + kPageHeader);
    double ns = transferMobileToServer(bytes);
    account(category, bytes, bytes, ns);
    for (uint64_t page_num : pages) {
        server_.mem().installPage(page_num,
                                  mobile_.mem().pageData(page_num));
        mobile_.mem().clearDirty(page_num);
    }
}

void
CommManager::fetchPageToServer(uint64_t page_num)
{
    ++demand_faults_;
    // Request (server→mobile, small) then the page (mobile→server).
    double ns1 = transferServerToMobile(64);
    account(CommCategory::Demand, 64, 64, ns1);
    double ns2 = transferMobileToServer(sim::kPageSize + kPageHeader);
    account(CommCategory::Demand, sim::kPageSize + kPageHeader,
            sim::kPageSize + kPageHeader, ns2);
    server_.mem().installPage(page_num, mobile_.mem().pageData(page_num));
}

uint64_t
CommManager::writeBackDirtyPages()
{
    std::vector<uint64_t> dirty = server_.mem().dirtyPages();
    if (dirty.empty()) {
        sendToMobile(64, CommCategory::Control); // bare termination signal
        return 0;
    }

    // Serialize page numbers + contents so the compressor sees real
    // bytes (ratio depends on actual data, like the paper's runtime).
    std::vector<uint8_t> payload;
    payload.reserve(dirty.size() * (sim::kPageSize + kPageHeader));
    for (uint64_t page_num : dirty) {
        for (int b = 0; b < 8; ++b)
            payload.push_back(static_cast<uint8_t>(page_num >> (8 * b)));
        const uint8_t *data = server_.mem().pageData(page_num);
        payload.insert(payload.end(), data, data + sim::kPageSize);
    }
    sendToMobile(payload.size(), CommCategory::WriteBack,
                 /*compressible=*/true, &payload);

    for (uint64_t page_num : dirty) {
        mobile_.mem().installPage(page_num,
                                  server_.mem().pageData(page_num));
    }
    return payload.size();
}

double
CommManager::secondsIn(CommCategory category) const
{
    auto it = totals_.find(category);
    return it == totals_.end() ? 0.0 : it->second.seconds;
}

uint64_t
CommManager::bytesIn(CommCategory category) const
{
    auto it = totals_.find(category);
    return it == totals_.end() ? 0 : it->second.wireBytes;
}

uint64_t
CommManager::totalRawBytes() const
{
    uint64_t total = 0;
    for (const auto &[category, totals] : totals_)
        total += totals.rawBytes;
    return total;
}

uint64_t
CommManager::totalWireBytes() const
{
    uint64_t total = 0;
    for (const auto &[category, totals] : totals_)
        total += totals.wireBytes;
    return total;
}

void
CommManager::resetStats()
{
    totals_.clear();
    demand_faults_ = 0;
    network_.resetStats();
}

} // namespace nol::runtime

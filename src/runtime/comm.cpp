#include "runtime/comm.hpp"

#include "compress/lz.hpp"
#include "net/medium.hpp"
#include "sim/costmodel.hpp"

namespace nol::runtime {

namespace {

/** Per-page wire header (page number + length). */
constexpr uint64_t kPageHeader = 16;

/** Compression cost: ~4 bytes per cost unit on the compressor. */
uint64_t
compressCost(uint64_t bytes)
{
    return bytes / 4;
}

/** Decompression is ~4x cheaper (paper Sec. 4). */
uint64_t
decompressCost(uint64_t bytes)
{
    return bytes / 16;
}

} // namespace

const char *
commCategoryName(CommCategory category)
{
    switch (category) {
      case CommCategory::Control: return "control";
      case CommCategory::Prefetch: return "prefetch";
      case CommCategory::Demand: return "copy-on-demand";
      case CommCategory::WriteBack: return "write-back";
      case CommCategory::RemoteIo: return "remote-io";
      case CommCategory::Digest: return "digest";
    }
    return "?";
}

CommManager::CommManager(sim::SimMachine &mobile, sim::SimMachine &server,
                         net::SimNetwork &network, bool compression_enabled,
                         RetryPolicy retry_policy)
    : mobile_(mobile), server_(server), network_(network),
      compression_(compression_enabled), retry_policy_(retry_policy)
{
}

void
CommManager::syncClocks()
{
    double t = std::max(mobile_.nowNs(), server_.nowNs());
    mobile_.syncTo(t, sim::PowerState::Waiting);
    server_.syncTo(t, sim::PowerState::Idle);
}

double
CommManager::transferMobileToServer(uint64_t bytes, bool unscaled,
                                    CommCategory category)
{
    return transferWithRetry(net::Direction::MobileToServer, bytes,
                             unscaled, category);
}

double
CommManager::transferServerToMobile(uint64_t bytes, bool unscaled,
                                    CommCategory category)
{
    return transferWithRetry(net::Direction::ServerToMobile, bytes,
                             unscaled, category);
}

double
CommManager::timedTransfer(net::Direction direction, uint64_t bytes,
                           bool unscaled)
{
    if (medium_ == nullptr) {
        return unscaled ? network_.transferUnscaled(direction, bytes)
                        : network_.transfer(direction, bytes);
    }
    // Fleet mode: the SimNetwork supplies the link parameters and the
    // closed-form duration; the SharedMedium serializes the bytes
    // against every other session's flows. Callers synced the clocks,
    // so mobile time is the flow's start on the shared timeline.
    double closed = unscaled ? network_.transferTimeUnscaledNs(bytes)
                             : network_.transferTimeNs(bytes);
    double ns = medium_->transfer(*strand_, mobile_.nowNs(), bytes,
                                  network_.bitsPerSecond(unscaled),
                                  network_.latencyNs(), closed);
    network_.accountTransfer(direction, bytes, ns);
    return ns;
}

net::TransferResult
CommManager::timedTryTransfer(net::Direction direction, uint64_t bytes,
                              bool unscaled)
{
    if (medium_ == nullptr)
        return network_.tryTransfer(direction, bytes, unscaled);
    // The fault decision stays in the per-session SimNetwork (its RNG
    // stream must not depend on fleet interleaving); only delivered or
    // dropped attempts occupy the medium.
    net::AttemptPlan plan = network_.planAttempt(direction, bytes, unscaled);
    if (plan.outcome == net::TransferOutcome::LinkDown)
        return {net::TransferOutcome::LinkDown, 0.0};
    double ns = medium_->transfer(*strand_, mobile_.nowNs(), bytes,
                                  plan.bitsPerSecond, plan.latencyNs,
                                  plan.ns);
    network_.accountTransfer(direction, bytes, ns);
    return {plan.outcome, ns};
}

double
CommManager::transferWithRetry(net::Direction direction, uint64_t bytes,
                               bool unscaled, CommCategory category)
{
    syncClocks();
    // Fast path: a perfect link needs no timeouts or acknowledgements.
    // This is the only path taken when the fault plan is disabled, so
    // fault-free runs are bit-identical to the pre-fault runtime.
    if (!network_.faultPlan().enabled) {
        double ns = timedTransfer(direction, bytes, unscaled);
        mobile_.advanceTime(ns, direction == net::Direction::MobileToServer
                                    ? sim::PowerState::Transmit
                                    : sim::PowerState::Receive);
        server_.advanceTime(ns, sim::PowerState::Idle);
        return ns;
    }

    sim::PowerState radio_state =
        direction == net::Direction::MobileToServer
            ? sim::PowerState::Transmit
            : sim::PowerState::Receive;
    double expected_ns = unscaled ? network_.transferTimeUnscaledNs(bytes)
                                  : network_.transferTimeNs(bytes);
    CommTotals &totals = totals_[category];
    double total_ns = 0;
    bool link_down = false;
    for (uint32_t attempt = 0; attempt < retry_policy_.maxAttempts;
         ++attempt) {
        if (attempt > 0) {
            double backoff = retry_policy_.backoffNs(attempt - 1);
            mobile_.advanceTime(backoff, sim::PowerState::Waiting);
            server_.advanceTime(backoff, sim::PowerState::Idle);
            ++totals.retries;
            totals.retrySeconds += backoff * 1e-9;
            total_ns += backoff;
        }
        net::TransferResult result =
            timedTryTransfer(direction, bytes, unscaled);
        if (result.outcome == net::TransferOutcome::Delivered) {
            mobile_.advanceTime(result.ns, radio_state);
            server_.advanceTime(result.ns, sim::PowerState::Idle);
            return total_ns + result.ns;
        }
        link_down = result.outcome == net::TransferOutcome::LinkDown;
        if (result.outcome == net::TransferOutcome::Dropped) {
            // The radio burned the whole send before the loss.
            mobile_.advanceTime(result.ns, radio_state);
            server_.advanceTime(result.ns, sim::PowerState::Idle);
            totals.retryWireBytes += bytes;
            totals.retrySeconds += result.ns * 1e-9;
            total_ns += result.ns;
        }
        // Wait out the acknowledgement timeout before retrying.
        double timeout = retry_policy_.timeoutNs(expected_ns);
        mobile_.advanceTime(timeout, sim::PowerState::Waiting);
        server_.advanceTime(timeout, sim::PowerState::Idle);
        totals.retrySeconds += timeout * 1e-9;
        total_ns += timeout;
    }
    ++totals.failures;
    throw CommFailure{category, link_down};
}

void
CommManager::account(CommCategory category, uint64_t wire, uint64_t raw,
                     double ns)
{
    CommTotals &totals = totals_[category];
    ++totals.messages;
    totals.wireBytes += wire;
    totals.rawBytes += raw;
    totals.seconds += ns * 1e-9;
}

void
CommManager::sendToServer(uint64_t bytes, CommCategory category)
{
    double ns = transferMobileToServer(
        bytes, category == CommCategory::RemoteIo, category);
    account(category, bytes, bytes, ns);
}

void
CommManager::sendToMobile(uint64_t raw_bytes, CommCategory category,
                          bool compressible,
                          const std::vector<uint8_t> *payload)
{
    uint64_t wire = raw_bytes;
    if (compression_ && compressible && raw_bytes > 0) {
        if (payload != nullptr) {
            wire = compress::lzCompress(*payload).size();
        } else {
            wire = raw_bytes / 2; // conservative default ratio
        }
        compress_units_server_ += compressCost(raw_bytes);
        server_.advanceCompute(compressCost(raw_bytes));
    }
    double ns = transferServerToMobile(
        wire, category == CommCategory::RemoteIo, category);
    if (compression_ && compressible && raw_bytes > 0) {
        decompress_units_mobile_ += decompressCost(raw_bytes);
        mobile_.advanceCompute(decompressCost(raw_bytes));
    }
    account(category, wire, raw_bytes, ns);
}

void
CommManager::pushPagesToServer(const std::vector<uint64_t> &pages,
                               CommCategory category)
{
    if (pages.empty())
        return;
    // Batched: one message carries every page (the paper's batching
    // amortizes per-message overheads).
    uint64_t bytes = pages.size() * (sim::kPageSize + kPageHeader);
    double ns = transferMobileToServer(bytes, false, category);
    account(category, bytes, bytes, ns);
    for (uint64_t page_num : pages) {
        server_.mem().installPage(page_num,
                                  mobile_.mem().pageData(page_num));
        mobile_.mem().clearDirty(page_num);
    }
}

void
CommManager::sendDigestsToServer(uint64_t page_count)
{
    // 16-byte batch header, then per page: 8-byte page number plus the
    // 16-byte content digest.
    sendToServer(16 + page_count * 24, CommCategory::Digest);
}

void
CommManager::sendHaveNeedToMobile(uint64_t page_count)
{
    // 16-byte header plus a have/need bitmap, one bit per offered page.
    sendToMobile(16 + (page_count + 7) / 8, CommCategory::Digest);
}

void
CommManager::fetchPageToServer(uint64_t page_num)
{
    ++demand_faults_;
    // Request (server→mobile, small) then the page (mobile→server).
    double ns1 = transferServerToMobile(64, false, CommCategory::Demand);
    account(CommCategory::Demand, 64, 64, ns1);
    double ns2 = transferMobileToServer(sim::kPageSize + kPageHeader, false,
                                        CommCategory::Demand);
    account(CommCategory::Demand, sim::kPageSize + kPageHeader,
            sim::kPageSize + kPageHeader, ns2);
    server_.mem().installPage(page_num, mobile_.mem().pageData(page_num));
}

uint64_t
CommManager::writeBackDirtyPages()
{
    std::vector<uint64_t> dirty = server_.mem().dirtyPages();
    if (dirty.empty()) {
        sendToMobile(64, CommCategory::Control); // bare termination signal
        return 0;
    }

    // Serialize page numbers + contents so the compressor sees real
    // bytes (ratio depends on actual data, like the paper's runtime).
    std::vector<uint8_t> payload;
    payload.reserve(dirty.size() * (sim::kPageSize + kPageHeader));
    for (uint64_t page_num : dirty) {
        for (int b = 0; b < 8; ++b)
            payload.push_back(static_cast<uint8_t>(page_num >> (8 * b)));
        const uint8_t *data = server_.mem().pageData(page_num);
        payload.insert(payload.end(), data, data + sim::kPageSize);
    }
    sendToMobile(payload.size(), CommCategory::WriteBack,
                 /*compressible=*/true, &payload);

    for (uint64_t page_num : dirty) {
        mobile_.mem().installPage(page_num,
                                  server_.mem().pageData(page_num));
    }
    return payload.size();
}

double
CommManager::secondsIn(CommCategory category) const
{
    auto it = totals_.find(category);
    return it == totals_.end() ? 0.0 : it->second.seconds;
}

uint64_t
CommManager::bytesIn(CommCategory category) const
{
    auto it = totals_.find(category);
    return it == totals_.end() ? 0 : it->second.wireBytes;
}

uint64_t
CommManager::totalRawBytes() const
{
    uint64_t total = 0;
    for (const auto &[category, totals] : totals_)
        total += totals.rawBytes;
    return total;
}

uint64_t
CommManager::totalWireBytes() const
{
    uint64_t total = 0;
    for (const auto &[category, totals] : totals_)
        total += totals.wireBytes + totals.retryWireBytes;
    return total;
}

uint64_t
CommManager::totalRetries() const
{
    uint64_t total = 0;
    for (const auto &[category, totals] : totals_)
        total += totals.retries;
    return total;
}

uint64_t
CommManager::totalFailures() const
{
    uint64_t total = 0;
    for (const auto &[category, totals] : totals_)
        total += totals.failures;
    return total;
}

void
CommManager::resetStats()
{
    totals_.clear();
    demand_faults_ = 0;
    network_.resetStats();
}

} // namespace nol::runtime

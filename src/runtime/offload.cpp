#include "runtime/offload.hpp"

#include "runtime/session.hpp"

namespace nol::runtime {

SystemConfig::SystemConfig() : network(net::makeWifi80211ac()) {}

double
RunReport::trafficPerOffloadMb(double mem_scale) const
{
    if (offloads == 0)
        return 0.0;
    return static_cast<double>(rawBytes) * mem_scale /
           (1e6 * static_cast<double>(offloads));
}

OffloadSystem::OffloadSystem(const compiler::CompiledProgram &program,
                             SystemConfig config)
    : program_(program), config_(std::move(config))
{
    NOL_ASSERT(program_.partition.mobileModule != nullptr,
               "program was not partitioned");
}

RunReport
OffloadSystem::run(const RunInput &input)
{
    // The legacy single-client entry point: one solo Session, private
    // machines and network, no shared timeline — the exact behavior
    // (and timing) this class had before the fleet layering.
    Session session(program_, config_);
    return session.run(input);
}

} // namespace nol::runtime

/**
 * @file
 * Generic forward attribute lattice over the points-to-resolved call
 * graph: a boolean attribute is seeded on individual instructions
 * (each seed carries a reason) and propagated to (transitive) callers,
 * recording a per-function *witness* — the call chain from the
 * function down to the seeding instruction. The function filter's
 * machine-specificity taint (paper Sec. 3.1) and remote-I/O use (Sec.
 * 3.4) are both instances; the offload-safety verifier re-runs the
 * machine-specificity instance on the partitioned server module.
 */
#ifndef NOL_ANALYSIS_TAINT_HPP
#define NOL_ANALYSIS_TAINT_HPP

#include <functional>
#include <map>
#include <set>
#include <string>

#include "analysis/pointsto.hpp"
#include "ir/module.hpp"

namespace nol::analysis {

/** Policy knobs of the machine-specificity classification. */
struct TaintPolicy {
    /** Remotable I/O builtins stay offloadable (paper Sec. 3.4). */
    bool remoteIoEnabled = true;
    /** Accept post-partition runtime names — r_* remote I/O twins and
     *  u_* UVA allocators — as machine independent (the verifier runs
     *  on partitioned modules where these replaced the originals). */
    bool allowRuntimeNames = true;
};

/** True if builtin @p name is remotely executable I/O. */
bool isRemoteIoName(const std::string &name);

/** True if builtin @p name is interactive (never remotable) I/O. */
bool isInteractiveIoName(const std::string &name);

/**
 * Why @p inst is machine specific by itself; "" if it is not. Indirect
 * calls are classified through @p pts: a fully resolved callee set is
 * clean here (taint reaches the caller through propagation), an
 * unresolved one is conservatively machine specific.
 */
std::string instructionTaint(const ir::Instruction &inst,
                             const TaintPolicy &policy,
                             const PointsToResult &pts);

/** One frame of a witness chain. */
struct TaintStep {
    const ir::Function *fn = nullptr;
    const ir::Instruction *inst = nullptr; ///< call site or seed inst
    std::string note; ///< "calls @x" / "may reach @x" / seed reason
};

/** Call chain from a function down to the instruction that gives it
 *  the attribute; steps[0] is the function itself, the last step is
 *  the seeding instruction. */
struct TaintWitness {
    std::vector<TaintStep> steps;
    std::string reason; ///< the seed reason

    /** One rendered frame per line, outermost first. */
    std::vector<std::string> frames() const;

    /** Single-line rendering ("@a: calls @b; @b: <inst>: reason"). */
    std::string str() const;
};

/** Result of one attribute propagation. */
class AttributeResult
{
  public:
    bool has(const ir::Function *fn) const
    {
        return witnesses_.count(fn) != 0;
    }

    /** Witness for @p fn, or nullptr if the attribute does not hold. */
    const TaintWitness *witness(const ir::Function *fn) const;

    const std::set<const ir::Function *> &members() const
    {
        return members_;
    }

    /** Blocks of @p fn containing an attribute-carrying instruction
     *  (a seed, or a call whose resolved callee set intersects the
     *  attribute set) — per-function loop-level precision. */
    const std::set<const ir::BasicBlock *> &blocks(const ir::Function *fn) const;

  private:
    friend AttributeResult propagateAttribute(
        const ir::Module &,
        const PointsToResult &,
        const std::function<std::string(const ir::Function &,
                                        const ir::Instruction &)> &);

    std::map<const ir::Function *, TaintWitness> witnesses_;
    std::set<const ir::Function *> members_;
    std::map<const ir::Function *, std::set<const ir::BasicBlock *>> blocks_;
    std::set<const ir::BasicBlock *> empty_blocks_;
};

/**
 * Propagate the attribute seeded by @p seed (non-empty reason ⇒ the
 * instruction carries it) bottom-up over direct and resolved-indirect
 * call edges of @p module. Unresolved indirect sites propagate from
 * every address-taken function, mirroring the conservative call graph.
 */
AttributeResult propagateAttribute(
    const ir::Module &module, const PointsToResult &pts,
    const std::function<std::string(const ir::Function &,
                                    const ir::Instruction &)> &seed);

/** The machine-specificity instance (function filter / verifier). */
AttributeResult machineSpecificTaint(const ir::Module &module,
                                     const PointsToResult &pts,
                                     const TaintPolicy &policy);

/** The remote-I/O-use instance (paper Sec. 3.4 bookkeeping). */
AttributeResult remoteIoUse(const ir::Module &module,
                            const PointsToResult &pts);

} // namespace nol::analysis

#endif // NOL_ANALYSIS_TAINT_HPP

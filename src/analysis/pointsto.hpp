/**
 * @file
 * Flow-insensitive, field-insensitive Andersen-style points-to
 * analysis over the offloading IR, with call-graph-driven
 * interprocedural propagation (indirect call edges are resolved from
 * the function-pointer sets as they grow).
 *
 * Abstract memory objects are globals, functions, heap allocation
 * sites (one per malloc/u_malloc-family call) and stack slots (one per
 * alloca). A distinguished Unknown object models values the analysis
 * cannot track (returns of unmodeled externals, loads through Unknown);
 * its presence in a set makes the consumer fall back to the paper's
 * conservative treatment.
 *
 * Consumers: the function filter (precise indirect-call taint with
 * witnesses), the memory unifier (shrinking the referenced-global set,
 * paper Sec. 3.2), the partitioner (shrinking the function-pointer
 * map, Sec. 3.4) and the post-partition offload-safety verifier.
 */
#ifndef NOL_ANALYSIS_POINTSTO_HPP
#define NOL_ANALYSIS_POINTSTO_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace nol::analysis {

class PointsToSolver;

/** One abstract memory object. */
struct MemObject {
    enum class Kind {
        Global,   ///< a GlobalVariable
        Function, ///< a Function (code address)
        Heap,     ///< one allocation site (the allocator call inst)
        Stack,    ///< one alloca instruction
        Unknown,  ///< anything the analysis cannot model
    };

    Kind kind = Kind::Unknown;
    const ir::Value *value = nullptr; ///< null for Unknown

    bool operator<(const MemObject &o) const
    {
        return kind != o.kind ? kind < o.kind : value < o.value;
    }
    bool operator==(const MemObject &o) const
    {
        return kind == o.kind && value == o.value;
    }

    bool isUnknown() const { return kind == Kind::Unknown; }

    /** "global @board", "fn @evalPawn", "heap site 'call @malloc...'". */
    std::string str() const;

    static MemObject unknown() { return {}; }
    static MemObject global(const ir::GlobalVariable *gv)
    {
        return {Kind::Global, gv};
    }
    static MemObject function(const ir::Function *fn)
    {
        return {Kind::Function, fn};
    }
    static MemObject heap(const ir::Instruction *site)
    {
        return {Kind::Heap, site};
    }
    static MemObject stack(const ir::Instruction *slot)
    {
        return {Kind::Stack, slot};
    }
};

/** A may-point-to set. */
using PtsSet = std::set<MemObject>;

/** Solver statistics (reported by bench_analysis). */
struct PointsToStats {
    size_t nodes = 0;       ///< values with a (possibly empty) set
    size_t objects = 0;     ///< distinct abstract objects
    size_t totalEdges = 0;  ///< sum of all set sizes
    size_t maxSetSize = 0;  ///< largest single set
    size_t iterations = 0;  ///< fixpoint passes over the module
};

/** Immutable result of one points-to run over one module. */
class PointsToResult
{
  public:
    /** May-point-to set of @p v (empty for untracked values). */
    const PtsSet &pointsTo(const ir::Value *v) const;

    /** May-point-to set of the pointers stored inside @p obj. */
    const PtsSet &contents(const MemObject &obj) const;

    /** Every object with recorded contents (escape analysis walks
     *  this to find stack slots whose address was stored somewhere). */
    const std::map<MemObject, PtsSet> &allContents() const
    {
        return contents_;
    }

    /** Resolved targets of one indirect call site. */
    struct CalleeSet {
        std::set<const ir::Function *> fns;
        /** False if the pointer may hold values the analysis lost
         *  track of — the consumer must fall back to "any
         *  address-taken function". */
        bool complete = true;
    };

    /** Targets of CallIndirect @p site (must be a CallIndirect). */
    CalleeSet indirectCallees(const ir::Instruction *site) const;

    /** Direct + resolved-indirect callees of @p fn (defined and
     *  external); complete=false if any indirect site in @p fn is
     *  unresolved. */
    struct FunctionCallees {
        std::set<const ir::Function *> fns;
        bool complete = true;
    };
    const FunctionCallees &callees(const ir::Function *fn) const;

    /** Address-taken functions (the conservative fallback universe). */
    const std::set<const ir::Function *> &addressTaken() const
    {
        return address_taken_;
    }

    /** Functions reachable from @p roots over resolved call edges. */
    struct Reachable {
        std::set<const ir::Function *> fns;
        /** False if an unresolved indirect call was reachable and the
         *  address-taken fallback was applied. */
        bool precise = true;
    };
    Reachable reachableFrom(const std::vector<const ir::Function *> &roots) const;

    const PointsToStats &stats() const { return stats_; }

  private:
    friend class PointsToSolver;
    friend PointsToResult analyzePointsTo(const ir::Module &module);

    std::map<const ir::Value *, PtsSet> pts_;
    std::map<MemObject, PtsSet> contents_;
    std::map<const ir::Function *, FunctionCallees> fn_callees_;
    std::set<const ir::Function *> address_taken_;
    PointsToStats stats_;
    PtsSet empty_;
    FunctionCallees empty_callees_;
};

/** Run the analysis on @p module. */
PointsToResult analyzePointsTo(const ir::Module &module);

/** True if @p name is a heap-allocator entry point the analysis models
 *  as a fresh allocation site (malloc family and its u_* UVA twins). */
bool isAllocatorName(const std::string &name);

} // namespace nol::analysis

#endif // NOL_ANALYSIS_POINTSTO_HPP

/**
 * @file
 * Flow-insensitive Andersen-style points-to analysis over the
 * offloading IR, with call-graph-driven interprocedural propagation
 * (indirect call edges are resolved from the function-pointer sets as
 * they grow).
 *
 * The solver is *field-sensitive* by default: an abstract object
 * carries an optional field dimension derived from the typed FieldAddr
 * instruction, so a struct whose slot 0 holds a function pointer and
 * whose slot 1 holds a data pointer keeps the two flows apart — the
 * memory unifier ships only the fields the offloaded code can reach
 * and the partitioner resolves function-pointer tables stored *inside*
 * structs to per-slot callee sets. Untyped address arithmetic
 * (ptrtoint + add) and nested aggregates fall back to a conservative
 * field collapse: the whole-object slot over-approximates every field,
 * loads from a field consult the whole-object slot, and loads through
 * the whole-object slot consult every field. The field-insensitive
 * solver is kept alive behind PointsToOptions::fieldSensitive=false as
 * the differential oracle — field-sensitive results must be a subset
 * of the insensitive ones on every workload.
 *
 * Abstract memory objects are globals, functions, heap allocation
 * sites (one per malloc/u_malloc-family call) and stack slots (one per
 * alloca). A distinguished Unknown object models values the analysis
 * cannot track (returns of unmodeled externals, loads through Unknown);
 * its presence in a set makes the consumer fall back to the paper's
 * conservative treatment.
 *
 * Consumers: the function filter (precise indirect-call taint with
 * witnesses), the memory unifier (shrinking the referenced-global set,
 * paper Sec. 3.2), the partitioner (shrinking the function-pointer
 * map, Sec. 3.4) and the post-partition offload-safety verifier.
 */
#ifndef NOL_ANALYSIS_POINTSTO_HPP
#define NOL_ANALYSIS_POINTSTO_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace nol::analysis {

class PointsToSolver;

/** Field index meaning "the whole object / unknown offset". */
inline constexpr int32_t kWholeObject = -1;

/** One abstract memory object (optionally one field of it). */
struct MemObject {
    enum class Kind {
        Global,   ///< a GlobalVariable
        Function, ///< a Function (code address)
        Heap,     ///< one allocation site (the allocator call inst)
        Stack,    ///< one alloca instruction
        Unknown,  ///< anything the analysis cannot model
    };

    Kind kind = Kind::Unknown;
    const ir::Value *value = nullptr; ///< null for Unknown
    /** Field subobject (FieldAddr index), or kWholeObject for the base
     *  address / a collapsed (untyped or variable) offset. The whole-
     *  object slot over-approximates every field slot. */
    int32_t field = kWholeObject;

    bool operator<(const MemObject &o) const
    {
        if (kind != o.kind)
            return kind < o.kind;
        if (value != o.value)
            return value < o.value;
        return field < o.field;
    }
    bool operator==(const MemObject &o) const
    {
        return kind == o.kind && value == o.value && field == o.field;
    }

    bool isUnknown() const { return kind == Kind::Unknown; }
    bool hasField() const { return field != kWholeObject; }

    /** Same object, addressed at @p f. */
    MemObject withField(int32_t f) const { return {kind, value, f}; }

    /** Same object, whole-object slot. */
    MemObject base() const { return {kind, value, kWholeObject}; }

    /** True if @p o names (a field of) the same base object. */
    bool sameBase(const MemObject &o) const
    {
        return kind == o.kind && value == o.value;
    }

    /** "global @board", "global @cfg.f1", "fn @evalPawn", ... */
    std::string str() const;

    static MemObject unknown() { return {}; }
    static MemObject global(const ir::GlobalVariable *gv)
    {
        return {Kind::Global, gv, kWholeObject};
    }
    static MemObject function(const ir::Function *fn)
    {
        return {Kind::Function, fn, kWholeObject};
    }
    static MemObject heap(const ir::Instruction *site)
    {
        return {Kind::Heap, site, kWholeObject};
    }
    static MemObject stack(const ir::Instruction *slot)
    {
        return {Kind::Stack, slot, kWholeObject};
    }
};

/** A may-point-to set. */
using PtsSet = std::set<MemObject>;

/** Solver configuration. */
struct PointsToOptions {
    /** Track per-field object contents (default). False selects the
     *  legacy field-insensitive solver — kept as the differential
     *  oracle: sensitive results must be a subset of insensitive. */
    bool fieldSensitive = true;
};

/** Solver statistics (reported by bench_analysis and nol-verify). */
struct PointsToStats {
    size_t nodes = 0;       ///< values with a (possibly empty) set
    size_t objects = 0;     ///< distinct abstract objects (incl. fields)
    size_t baseObjects = 0; ///< distinct base objects (fields merged)
    size_t fieldSlots = 0;  ///< objects with a concrete field index
    size_t totalEdges = 0;  ///< sum of all set sizes
    size_t maxSetSize = 0;  ///< largest single set
    size_t iterations = 0;  ///< fixpoint passes over the module
    bool fieldSensitive = false; ///< mode the solver ran in
};

/** Immutable result of one points-to run over one module. */
class PointsToResult
{
  public:
    /** May-point-to set of @p v (empty for untracked values). */
    const PtsSet &pointsTo(const ir::Value *v) const;

    /** May-point-to set of the pointers stored inside @p obj (the
     *  exact slot only — see contentsOfAllSlots for the sound read). */
    const PtsSet &contents(const MemObject &obj) const;

    /** Union of contents over every slot of @p obj's base object —
     *  what a load through an unknown offset may observe. */
    PtsSet contentsOfAllSlots(const MemObject &obj) const;

    /** Every object with recorded contents (escape analysis walks
     *  this to find stack slots whose address was stored somewhere). */
    const std::map<MemObject, PtsSet> &allContents() const
    {
        return contents_;
    }

    /** Resolved targets of one indirect call site. */
    struct CalleeSet {
        std::set<const ir::Function *> fns;
        /** False if the pointer may hold values the analysis lost
         *  track of — the consumer must fall back to "any
         *  address-taken function". */
        bool complete = true;
    };

    /** Targets of CallIndirect @p site (must be a CallIndirect). */
    CalleeSet indirectCallees(const ir::Instruction *site) const;

    /** Direct + resolved-indirect callees of @p fn (defined and
     *  external); complete=false if any indirect site in @p fn is
     *  unresolved. */
    struct FunctionCallees {
        std::set<const ir::Function *> fns;
        bool complete = true;
    };
    const FunctionCallees &callees(const ir::Function *fn) const;

    /** Address-taken functions (the conservative fallback universe). */
    const std::set<const ir::Function *> &addressTaken() const
    {
        return address_taken_;
    }

    /** Functions reachable from @p roots over resolved call edges. */
    struct Reachable {
        std::set<const ir::Function *> fns;
        /** False if an unresolved indirect call was reachable and the
         *  address-taken fallback was applied. */
        bool precise = true;
    };
    Reachable reachableFrom(const std::vector<const ir::Function *> &roots) const;

    const PointsToStats &stats() const { return stats_; }

    /** Mode the solver ran in. */
    bool fieldSensitive() const { return options_.fieldSensitive; }

  private:
    friend class PointsToSolver;
    friend PointsToResult analyzePointsTo(const ir::Module &module,
                                          const PointsToOptions &options);

    PointsToOptions options_;
    std::map<const ir::Value *, PtsSet> pts_;
    std::map<MemObject, PtsSet> contents_;
    std::map<const ir::Function *, FunctionCallees> fn_callees_;
    std::set<const ir::Function *> address_taken_;
    PointsToStats stats_;
    PtsSet empty_;
    FunctionCallees empty_callees_;
};

/** Run the analysis on @p module. */
PointsToResult analyzePointsTo(const ir::Module &module,
                               const PointsToOptions &options = {});

/** True if @p name is a heap-allocator entry point the analysis models
 *  as a fresh allocation site (malloc family and its u_* UVA twins). */
bool isAllocatorName(const std::string &name);

} // namespace nol::analysis

#endif // NOL_ANALYSIS_POINTSTO_HPP

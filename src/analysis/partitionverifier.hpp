/**
 * @file
 * Post-partition offload-safety verifier. Statically proves, on the
 * mobile/server module pair the Partitioner emitted, the invariants
 * the runtime silently relies on:
 *
 *  - structural: both clones pass ir::verifyModule;
 *  - dispatch-machine-specific: no machine-specific instruction is
 *    reachable from the server dispatch roots (the offload targets);
 *  - global-not-uva: every global the offloaded code may reference —
 *    through points-to, not just syntactically — was relocated into
 *    the UVA region (paper Sec. 3.2);
 *  - fptr-map-missing: every function address that can flow to an
 *    indirect call executed on the server is present in the
 *    function-pointer translation map (Sec. 3.4); the reverse
 *    direction (map entries that cannot flow anywhere) is a warning,
 *    since an oversized map only costs translation-table space;
 *  - stack-mark-mismatch: the mobile and server clones agree on every
 *    stack-reallocation mark.
 *
 * Each failed invariant produces a support::Diagnostic naming the
 * offending function/instruction with a witness call chain.
 */
#ifndef NOL_ANALYSIS_PARTITIONVERIFIER_HPP
#define NOL_ANALYSIS_PARTITIONVERIFIER_HPP

#include <set>
#include <string>
#include <vector>

#include "analysis/taint.hpp"
#include "ir/module.hpp"
#include "support/diagnostic.hpp"

namespace nol::analysis {

/** Everything the verifier needs about one partition. */
struct PartitionCheckInput {
    const ir::Module *mobile = nullptr;
    const ir::Module *server = nullptr;
    /** Server dispatch roots: the offload-target function names. */
    std::vector<std::string> targets;
    /** Declared function-pointer translation map (function names). */
    std::set<std::string> fptrMap;
    TaintPolicy policy;
    /** Run the checks with the field-sensitive points-to solver and
     *  enforce per-field UVA marks on field-limited struct globals
     *  (default). Must match the mode the partition was compiled with
     *  so the verifier's needed sets mirror the compiler's. */
    bool fieldSensitive = true;
};

/** Diagnostic codes the verifier emits. */
namespace diag {
inline constexpr const char *kStructural = "structural";
inline constexpr const char *kTargetMissing = "target-missing";
inline constexpr const char *kMachineSpecific = "dispatch-machine-specific";
inline constexpr const char *kGlobalNotUva = "global-not-uva";
inline constexpr const char *kFptrMapMissing = "fptr-map-missing";
inline constexpr const char *kFptrMapExtra = "fptr-map-extra";
inline constexpr const char *kStackMarkMismatch = "stack-mark-mismatch";
} // namespace diag

/** Run every check, appending findings to @p engine. */
void verifyPartition(const PartitionCheckInput &input,
                     support::DiagnosticEngine &engine);

} // namespace nol::analysis

#endif // NOL_ANALYSIS_PARTITIONVERIFIER_HPP

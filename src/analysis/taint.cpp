#include "analysis/taint.hpp"

#include "frontend/builtins.hpp"
#include "ir/printer.hpp"

namespace nol::analysis {

namespace {

/** Remote-capable output and file-stream builtins (paper Sec. 3.4:
 *  outputs are cheap one-way; file streams support remote input because
 *  data can be prefetched and amortized). */
const std::set<std::string> kRemoteIo = {
    "printf", "puts",  "putchar", "fopen", "fclose", "fread",
    "fwrite", "fgetc", "fputc",   "feof",  "fseek",  "ftell",
};

/** Interactive input builtins: a round trip to the user; never remote. */
const std::set<std::string> kInteractiveIo = {
    "scanf",
    "getchar",
};

/** Strip the server-side "r_" prefix if the rest is remotable I/O. */
std::string
stripRemotePrefix(const std::string &name)
{
    if (name.size() > 2 && name.compare(0, 2, "r_") == 0 &&
        kRemoteIo.count(name.substr(2)) != 0) {
        return name.substr(2);
    }
    return name;
}

} // namespace

bool
isRemoteIoName(const std::string &name)
{
    return kRemoteIo.count(name) != 0;
}

bool
isInteractiveIoName(const std::string &name)
{
    return kInteractiveIo.count(name) != 0;
}

std::string
instructionTaint(const ir::Instruction &inst, const TaintPolicy &policy,
                 const PointsToResult &pts)
{
    if (inst.op() == ir::Opcode::MachineAsm)
        return "assembly instruction";
    if (inst.op() == ir::Opcode::CallIndirect) {
        // Classified through points-to: a fully resolved callee set is
        // clean here (any target taint reaches the caller through
        // propagation); losing track of the pointer is conservatively
        // machine specific.
        PointsToResult::CalleeSet callees = pts.indirectCallees(&inst);
        if (!callees.complete)
            return "indirect call with unresolved targets";
        return "";
    }
    if (inst.op() != ir::Opcode::Call)
        return "";
    const ir::Function *callee = inst.callee();
    if (callee == nullptr)
        return "call with no callee";
    if (!callee->isExternal())
        return "";
    std::string name = callee->name();
    if (policy.allowRuntimeNames) {
        if (isAllocatorName(name) || name == "u_free")
            return ""; // UVA allocator twins (post-unification modules)
        name = stripRemotePrefix(name);
    }
    if (name == "__machine_asm")
        return "assembly instruction";
    if (name == "__syscall" || name == "exit")
        return "system call";
    if (kInteractiveIo.count(name))
        return "interactive I/O (" + name + ")";
    if (kRemoteIo.count(name)) {
        if (policy.remoteIoEnabled)
            return ""; // remotely executable (Sec. 3.4)
        return "I/O instruction (" + name + ")";
    }
    if (frontend::isBuiltin(name))
        return ""; // known side-effect-free library call
    return "unknown external library call (" + name + ")";
}

std::vector<std::string>
TaintWitness::frames() const
{
    std::vector<std::string> out;
    for (size_t i = 0; i < steps.size(); ++i) {
        const TaintStep &step = steps[i];
        std::string frame = "@" + step.fn->name() + ": ";
        if (i + 1 == steps.size()) {
            frame += "'";
            frame += ir::printInst(*step.inst);
            frame += "': ";
            frame += step.note;
        } else {
            frame += step.note;
            frame += " at '";
            frame += ir::printInst(*step.inst);
            frame += "'";
        }
        out.push_back(std::move(frame));
    }
    return out;
}

std::string
TaintWitness::str() const
{
    std::string out;
    for (const std::string &frame : frames()) {
        if (!out.empty())
            out += "; ";
        out += frame;
    }
    return out;
}

const TaintWitness *
AttributeResult::witness(const ir::Function *fn) const
{
    auto it = witnesses_.find(fn);
    return it == witnesses_.end() ? nullptr : &it->second;
}

const std::set<const ir::BasicBlock *> &
AttributeResult::blocks(const ir::Function *fn) const
{
    auto it = blocks_.find(fn);
    return it == blocks_.end() ? empty_blocks_ : it->second;
}

AttributeResult
propagateAttribute(
    const ir::Module &module, const PointsToResult &pts,
    const std::function<std::string(const ir::Function &,
                                    const ir::Instruction &)> &seed)
{
    AttributeResult result;

    // Pass 1: per-instruction seeds.
    for (const auto &fn : module.functions()) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                std::string why = seed(*fn, *inst);
                if (why.empty())
                    continue;
                result.blocks_[fn.get()].insert(bb.get());
                if (result.witnesses_.count(fn.get()) != 0)
                    continue;
                TaintWitness witness;
                witness.reason = why;
                witness.steps.push_back({fn.get(), inst.get(), why});
                result.witnesses_.emplace(fn.get(), std::move(witness));
                result.members_.insert(fn.get());
            }
        }
    }

    // The conservative universe for unresolved indirect sites.
    std::set<const ir::Function *> addr_taken_defined;
    for (const ir::Function *fn : pts.addressTaken()) {
        if (fn->hasBody())
            addr_taken_defined.insert(fn);
    }

    // Per-site callee sets (direct callee, resolved indirect targets,
    // or the address-taken fallback when a site is unresolved).
    auto site_callees =
        [&](const ir::Instruction &inst,
            bool &indirect) -> std::set<const ir::Function *> {
        indirect = false;
        if (inst.op() == ir::Opcode::Call) {
            if (inst.callee() != nullptr && inst.callee()->hasBody())
                return {inst.callee()};
            return {};
        }
        if (inst.op() != ir::Opcode::CallIndirect)
            return {};
        indirect = true;
        PointsToResult::CalleeSet cs = pts.indirectCallees(&inst);
        if (!cs.complete)
            return addr_taken_defined;
        std::set<const ir::Function *> defined;
        for (const ir::Function *target : cs.fns) {
            if (target->hasBody())
                defined.insert(target);
        }
        return defined;
    };

    // Pass 2: bottom-up fixpoint over resolved call edges.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &fn : module.functions()) {
            if (result.witnesses_.count(fn.get()) != 0)
                continue;
            for (const auto &bb : fn->blocks()) {
                for (const auto &inst : bb->insts()) {
                    bool indirect = false;
                    for (const ir::Function *callee :
                         site_callees(*inst, indirect)) {
                        auto it = result.witnesses_.find(callee);
                        if (it == result.witnesses_.end())
                            continue;
                        TaintWitness witness;
                        witness.reason = it->second.reason;
                        witness.steps.push_back(
                            {fn.get(), inst.get(),
                             (indirect ? "may reach @" : "calls @") +
                                 callee->name()});
                        witness.steps.insert(witness.steps.end(),
                                             it->second.steps.begin(),
                                             it->second.steps.end());
                        result.witnesses_.emplace(fn.get(),
                                                  std::move(witness));
                        result.members_.insert(fn.get());
                        changed = true;
                        break;
                    }
                    if (result.witnesses_.count(fn.get()) != 0)
                        break;
                }
                if (result.witnesses_.count(fn.get()) != 0)
                    break;
            }
        }
    }

    // Pass 3: block-level marks for call sites reaching members (the
    // loop filter needs per-block verdicts inside untainted callers
    // too, e.g. a loop around a call to a tainted helper).
    for (const auto &fn : module.functions()) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                bool indirect = false;
                for (const ir::Function *callee :
                     site_callees(*inst, indirect)) {
                    if (result.members_.count(callee) != 0) {
                        result.blocks_[fn.get()].insert(bb.get());
                        break;
                    }
                }
            }
        }
    }

    return result;
}

AttributeResult
machineSpecificTaint(const ir::Module &module, const PointsToResult &pts,
                     const TaintPolicy &policy)
{
    return propagateAttribute(
        module, pts,
        [&](const ir::Function &fn, const ir::Instruction &inst) {
            (void)fn;
            return instructionTaint(inst, policy, pts);
        });
}

AttributeResult
remoteIoUse(const ir::Module &module, const PointsToResult &pts)
{
    return propagateAttribute(
        module, pts,
        [](const ir::Function &fn,
           const ir::Instruction &inst) -> std::string {
            (void)fn;
            if (inst.op() != ir::Opcode::Call || inst.callee() == nullptr)
                return "";
            const ir::Function *callee = inst.callee();
            if (!callee->isExternal())
                return "";
            if (isRemoteIoName(callee->name()))
                return "remote I/O (" + callee->name() + ")";
            return "";
        });
}

} // namespace nol::analysis

#include "analysis/repair.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace nol::analysis {

namespace {

using support::DiagSeverity;
using support::Diagnostic;
using support::DiagnosticEngine;

/** One verify pass over the current state of @p input. */
DiagnosticEngine
verifyOnce(const RepairInput &input)
{
    DiagnosticEngine engine;
    verifyPartition(input.check(), engine);
    return engine;
}

/** Apply the marks of one global-not-uva finding to @p gv. */
void
promoteGlobal(ir::GlobalVariable *gv, const Diagnostic &diag)
{
    if (!gv->inUva()) {
        gv->setInUva(true);
        return;
    }
    // Already in UVA: a field-limited mark was too narrow.
    if (!gv->uvaFieldLimited())
        return;
    if (diag.field >= 0)
        gv->addUvaField(diag.field);
    else
        gv->clearUvaFields(); // whole-object access: lift the limit
}

/** Demote @p name from the dispatch roots (target runs locally only). */
bool
demoteTarget(std::vector<std::string> &targets, const std::string &name)
{
    auto it = std::find(targets.begin(), targets.end(), name);
    if (it == targets.end())
        return false;
    targets.erase(it);
    return true;
}

/** OR-align the uvaStack marks of @p name's clones (lockstep walk). */
bool
alignStackMarks(ir::Module &mobile, ir::Module &server,
                const std::string &name)
{
    ir::Function *mob_fn = mobile.functionByName(name);
    ir::Function *srv_fn = server.functionByName(name);
    if (mob_fn == nullptr || srv_fn == nullptr || !mob_fn->hasBody() ||
        !srv_fn->hasBody()) {
        return false;
    }
    bool changed = false;
    size_t blocks =
        std::min(mob_fn->blocks().size(), srv_fn->blocks().size());
    for (size_t b = 0; b < blocks; ++b) {
        ir::BasicBlock &mbb = *mob_fn->blocks()[b];
        ir::BasicBlock &sbb = *srv_fn->blocks()[b];
        size_t insts = std::min(mbb.size(), sbb.size());
        for (size_t i = 0; i < insts; ++i) {
            ir::Instruction *mi = mbb.inst(i);
            ir::Instruction *si = sbb.inst(i);
            if (mi->op() != ir::Opcode::Alloca ||
                si->op() != ir::Opcode::Alloca ||
                mi->uvaStack() == si->uvaStack()) {
                continue;
            }
            mi->setUvaStack(true);
            si->setUvaStack(true);
            changed = true;
        }
    }
    return changed;
}

/** Apply one round of fixes; true if anything changed. */
bool
applyRepairs(const RepairInput &input, const DiagnosticEngine &engine,
             RepairReport &report)
{
    bool changed = false;
    auto act = [&](const Diagnostic &diag, const std::string &detail) {
        report.actions.push_back(
            {diag.code, diag.subject, diag.field, detail});
        changed = true;
    };

    for (const Diagnostic &diag : engine.diagnostics()) {
        if (diag.code == diag::kGlobalNotUva) {
            bool promoted = false;
            bool widened = false;
            for (ir::Module *module : {input.mobile, input.server}) {
                ir::GlobalVariable *gv = module->globalByName(diag.subject);
                if (gv == nullptr)
                    continue;
                bool was_uva = gv->inUva();
                bool was_limited = gv->uvaFieldLimited();
                size_t marks = gv->uvaFields().size();
                promoteGlobal(gv, diag);
                promoted |= gv->inUva() != was_uva;
                widened |= gv->uvaFieldLimited() != was_limited ||
                           gv->uvaFields().size() != marks;
            }
            if (promoted) {
                ++report.globalsPromoted;
                act(diag, "promoted global @" + diag.subject +
                              " into the UVA region");
            } else if (widened) {
                ++report.fieldsPromoted;
                act(diag, diag.field >= 0
                              ? "widened UVA field marks of @" +
                                    diag.subject + " by field #" +
                                    std::to_string(diag.field)
                              : "lifted the UVA field limit of @" +
                                    diag.subject);
            }
        } else if (diag.code == diag::kFptrMapMissing) {
            if (!input.fptrMap->insert(diag.subject).second)
                continue;
            ++report.fptrAdded;
            act(diag, "added @" + diag.subject + " to the fptr map");
        } else if (diag.code == diag::kFptrMapExtra) {
            if (input.fptrMap->erase(diag.subject) == 0)
                continue;
            ++report.fptrDropped;
            act(diag, "dropped dead fptr map entry @" + diag.subject);
        } else if (diag.code == diag::kMachineSpecific ||
                   diag.code == diag::kTargetMissing) {
            if (!demoteTarget(*input.targets, diag.subject))
                continue;
            ++report.targetsDemoted;
            act(diag, "demoted target @" + diag.subject +
                          " to local-only execution");
        } else if (diag.code == diag::kStackMarkMismatch) {
            if (!alignStackMarks(*input.mobile, *input.server,
                                 diag.subject)) {
                continue;
            }
            ++report.stackMarksAligned;
            act(diag, "aligned stack-reallocation marks of @" +
                          diag.subject);
        } else if (diag.code == diag::kStructural) {
            if (diag.subject.empty())
                continue; // module-level problem: not repairable
            // The message names the malformed module; strip the
            // function's body there (a declaration is always well
            // formed). Any target that loses its body this way is
            // demoted by the next round's target-missing finding.
            for (ir::Module *module : {input.mobile, input.server}) {
                if (diag.message.find("module " + module->name() + ":") ==
                    std::string::npos) {
                    continue;
                }
                ir::Function *fn = module->functionByName(diag.subject);
                if (fn == nullptr || !fn->hasBody())
                    continue;
                fn->stripBody();
                ++report.bodiesStripped;
                act(diag, "stripped malformed body of @" + diag.subject +
                              " in " + module->name());
            }
        }
    }
    return changed;
}

} // namespace

RepairReport
repairPartition(const RepairInput &input, const RepairOptions &options)
{
    NOL_ASSERT(input.mobile != nullptr && input.server != nullptr &&
                   input.targets != nullptr && input.fptrMap != nullptr,
               "repairPartition needs a fully wired RepairInput");
    RepairReport report;
    for (;;) {
        ++report.iterations;
        DiagnosticEngine engine = verifyOnce(input);
        if (engine.empty()) {
            report.converged = true;
            report.remaining = std::move(engine);
            return report;
        }
        if (!options.enabled || report.iterations >= options.maxIterations ||
            !applyRepairs(input, engine, report)) {
            // Disabled, out of budget, or nothing left we know how to
            // fix — report the surviving diagnostics.
            report.remaining = std::move(engine);
            return report;
        }
    }
}

} // namespace nol::analysis

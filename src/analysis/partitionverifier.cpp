#include "analysis/partitionverifier.hpp"

#include <map>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace nol::analysis {

namespace {

using support::DiagSeverity;
using support::Diagnostic;
using support::DiagnosticEngine;

void
checkStructural(const ir::Module &module, DiagnosticEngine &engine)
{
    for (const std::string &problem : ir::verifyModule(module)) {
        Diagnostic &diag =
            engine.report(DiagSeverity::Error, diag::kStructural,
                          "module " + module.name() + ": " + problem);
        diag.function = "";
        // ir::verifyModule prefixes function-level problems with
        // "in @<fn>: " — surface the name so repair can act on it.
        if (problem.rfind("in @", 0) == 0) {
            size_t colon = problem.find(':');
            if (colon != std::string::npos)
                diag.subject = problem.substr(4, colon - 4);
        }
    }
}

/** Resolve the dispatch roots; reports target-missing for absentees. */
std::vector<const ir::Function *>
resolveTargets(const PartitionCheckInput &input, DiagnosticEngine &engine)
{
    std::vector<const ir::Function *> roots;
    for (const std::string &name : input.targets) {
        const ir::Function *fn = input.server->functionByName(name);
        if (fn == nullptr || !fn->hasBody()) {
            Diagnostic &diag = engine.report(
                DiagSeverity::Error, diag::kTargetMissing,
                "offload target @" + name +
                    " has no body in the server module");
            diag.function = name;
            diag.subject = name;
            continue;
        }
        roots.push_back(fn);
    }
    return roots;
}

void
checkMachineSpecific(const PartitionCheckInput &input,
                     const PointsToResult &pts,
                     const std::vector<const ir::Function *> &roots,
                     DiagnosticEngine &engine)
{
    AttributeResult taint =
        machineSpecificTaint(*input.server, pts, input.policy);
    for (const ir::Function *root : roots) {
        const TaintWitness *witness = taint.witness(root);
        if (witness == nullptr)
            continue;
        Diagnostic &diag = engine.report(
            DiagSeverity::Error, diag::kMachineSpecific,
            "machine-specific instruction reachable from server dispatch "
            "root @" + root->name() + ": " + witness->reason);
        diag.function = root->name();
        diag.subject = root->name();
        diag.instruction = ir::printInst(*witness->steps.back().inst);
        diag.witness = witness->frames();
    }
}

/** First instruction that makes a function reference each global. */
struct GlobalRef {
    const ir::Function *fn = nullptr;
    const ir::Instruction *inst = nullptr;
};

void
checkReferencedGlobals(const PointsToResult &pts,
                       const std::vector<const ir::Function *> &roots,
                       DiagnosticEngine &engine)
{
    PointsToResult::Reachable reach = pts.reachableFrom(roots);
    std::map<const ir::GlobalVariable *, GlobalRef> referenced;
    auto note = [&](const PtsSet &set, const ir::Function *fn,
                    const ir::Instruction *inst) {
        for (const MemObject &obj : set) {
            if (obj.kind != MemObject::Kind::Global)
                continue;
            const auto *gv =
                static_cast<const ir::GlobalVariable *>(obj.value);
            referenced.emplace(gv, GlobalRef{fn, inst});
        }
    };
    for (const ir::Function *fn : reach.fns) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                note(pts.pointsTo(inst.get()), fn, inst.get());
                for (const ir::Value *op : inst->operands())
                    note(pts.pointsTo(op), fn, inst.get());
            }
        }
    }

    for (const auto &[gv, ref] : referenced) {
        if (gv->inUva())
            continue;
        Diagnostic &diag = engine.report(
            DiagSeverity::Error, diag::kGlobalNotUva,
            "global @" + gv->name() +
                " is referenced by offloaded code but was not relocated "
                "into the UVA region");
        diag.function = ref.fn->name();
        diag.subject = gv->name();
        diag.instruction = ir::printInst(*ref.inst);
        diag.witness = {"@" + ref.fn->name() + ": references global @" +
                        gv->name() + " at '" + ir::printInst(*ref.inst) +
                        "'"};
    }
}

/**
 * Field-granular UVA check (field-sensitive mode only): for struct
 * globals whose UVA mark was limited to a field subset, every memory
 * access offloaded code can perform must land on a marked field. A
 * whole-object access (unknown offset, or the address escaping to an
 * external routine) needs every field, which a limited mark cannot
 * promise. Field-insensitive verification cannot see this at all — it
 * stops at gv->inUva(), which is still true for these globals.
 */
void
checkUvaFieldMarks(const PointsToResult &pts,
                   const std::vector<const ir::Function *> &roots,
                   DiagnosticEngine &engine)
{
    PointsToResult::Reachable reach = pts.reachableFrom(roots);
    if (!reach.precise)
        return; // conservative marking never limits fields

    struct FieldRef {
        const ir::Function *fn = nullptr;
        const ir::Instruction *inst = nullptr;
    };
    // First witness per (global, field); field -1 = whole-object access.
    std::map<std::pair<const ir::GlobalVariable *, int32_t>, FieldRef>
        accessed;
    auto note = [&](const PtsSet &set, const ir::Function *fn,
                    const ir::Instruction *inst) {
        for (const MemObject &obj : set) {
            if (obj.kind != MemObject::Kind::Global)
                continue;
            const auto *gv =
                static_cast<const ir::GlobalVariable *>(obj.value);
            accessed.emplace(std::make_pair(gv, obj.field),
                             FieldRef{fn, inst});
        }
    };
    for (const ir::Function *fn : reach.fns) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                switch (inst->op()) {
                  case ir::Opcode::Load:
                    note(pts.pointsTo(inst->operand(0)), fn, inst.get());
                    break;
                  case ir::Opcode::Store:
                    note(pts.pointsTo(inst->operand(1)), fn, inst.get());
                    break;
                  case ir::Opcode::Call:
                    if (inst->callee() != nullptr &&
                        !inst->callee()->hasBody()) {
                        for (const ir::Value *op : inst->operands())
                            note(pts.pointsTo(op), fn, inst.get());
                    }
                    break;
                  default:
                    break;
                }
            }
        }
    }

    for (const auto &[key, ref] : accessed) {
        const ir::GlobalVariable *gv = key.first;
        int32_t field = key.second;
        if (!gv->inUva() || !gv->uvaFieldLimited())
            continue; // whole-global marking covers every access
        if (field != kWholeObject && gv->uvaFields().count(field) != 0)
            continue;
        std::string what =
            field == kWholeObject
                ? "with unknown offset (whole object)"
                : "at field #" + std::to_string(field);
        Diagnostic &diag = engine.report(
            DiagSeverity::Error, diag::kGlobalNotUva,
            "global @" + gv->name() + " is accessed by offloaded code " +
                what + " but its UVA mark does not cover that field");
        diag.function = ref.fn->name();
        diag.subject = gv->name();
        diag.field = field;
        diag.instruction = ir::printInst(*ref.inst);
        diag.witness = {"@" + ref.fn->name() + ": accesses global @" +
                        gv->name() + " " + what + " at '" +
                        ir::printInst(*ref.inst) + "'"};
    }
}

void
checkFptrMap(const PartitionCheckInput &input, const PointsToResult &pts,
             DiagnosticEngine &engine)
{
    std::set<std::string> needed;
    bool any_indirect = false;
    for (const auto &fn : input.server->functions()) {
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() != ir::Opcode::CallIndirect)
                    continue;
                any_indirect = true;
                PointsToResult::CalleeSet callees =
                    pts.indirectCallees(inst.get());
                std::set<const ir::Function *> targets = callees.fns;
                if (!callees.complete) {
                    // Unresolved pointer: any address-taken function
                    // must be translatable.
                    targets.insert(pts.addressTaken().begin(),
                                   pts.addressTaken().end());
                }
                for (const ir::Function *target : targets) {
                    needed.insert(target->name());
                    if (input.fptrMap.count(target->name()) != 0)
                        continue;
                    Diagnostic &diag = engine.report(
                        DiagSeverity::Error, diag::kFptrMapMissing,
                        "function address @" + target->name() +
                            " can flow to a server indirect call but is "
                            "missing from the fptr map");
                    diag.function = fn->name();
                    diag.subject = target->name();
                    diag.instruction = ir::printInst(*inst);
                    diag.witness = {
                        "@" + fn->name() + ": '" + ir::printInst(*inst) +
                            "' may call @" + target->name(),
                    };
                }
            }
        }
    }

    for (const std::string &name : input.fptrMap) {
        if (needed.count(name) != 0)
            continue;
        Diagnostic &diag = engine.report(
            DiagSeverity::Warning, diag::kFptrMapExtra,
            "fptr map entry @" + name +
                (any_indirect
                     ? " cannot flow to any server indirect call"
                     : " is dead weight: the server has no indirect "
                       "calls"));
        diag.function = name;
        diag.subject = name;
    }
}

void
checkStackMarks(const PartitionCheckInput &input, DiagnosticEngine &engine)
{
    for (const auto &mob_fn : input.mobile->functions()) {
        if (!mob_fn->hasBody())
            continue;
        const ir::Function *srv_fn =
            input.server->functionByName(mob_fn->name());
        if (srv_fn == nullptr || !srv_fn->hasBody())
            continue; // stripped on the server side
        // Clones share block/instruction structure; walk in lockstep.
        size_t blocks = std::min(mob_fn->blocks().size(),
                                 srv_fn->blocks().size());
        for (size_t b = 0; b < blocks; ++b) {
            const ir::BasicBlock &mbb = *mob_fn->blocks()[b];
            const ir::BasicBlock &sbb = *srv_fn->blocks()[b];
            size_t insts = std::min(mbb.size(), sbb.size());
            for (size_t i = 0; i < insts; ++i) {
                const ir::Instruction *mi = mbb.inst(i);
                const ir::Instruction *si = sbb.inst(i);
                if (mi->op() != ir::Opcode::Alloca ||
                    si->op() != ir::Opcode::Alloca) {
                    continue;
                }
                if (mi->uvaStack() == si->uvaStack())
                    continue;
                Diagnostic &diag = engine.report(
                    DiagSeverity::Error, diag::kStackMarkMismatch,
                    "stack-reallocation mark of '" + ir::printInst(*si) +
                        "' in @" + mob_fn->name() +
                        " differs between the mobile (" +
                        (mi->uvaStack() ? "uva" : "local") +
                        ") and server (" +
                        (si->uvaStack() ? "uva" : "local") + ") clones");
                diag.function = mob_fn->name();
                diag.subject = mob_fn->name();
                diag.instruction = ir::printInst(*si);
            }
        }
    }
}

} // namespace

void
verifyPartition(const PartitionCheckInput &input, DiagnosticEngine &engine)
{
    NOL_ASSERT(input.mobile != nullptr && input.server != nullptr,
               "verifyPartition needs both modules");
    checkStructural(*input.mobile, engine);
    checkStructural(*input.server, engine);

    std::vector<const ir::Function *> roots =
        resolveTargets(input, engine);

    PointsToResult pts = analyzePointsTo(
        *input.server, {.fieldSensitive = input.fieldSensitive});
    checkMachineSpecific(input, pts, roots, engine);
    checkReferencedGlobals(pts, roots, engine);
    if (input.fieldSensitive)
        checkUvaFieldMarks(pts, roots, engine);
    checkFptrMap(input, pts, engine);
    checkStackMarks(input, engine);
}

} // namespace nol::analysis

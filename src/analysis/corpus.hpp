/**
 * @file
 * Intentionally-broken module-pair corpus: one hand-built partition per
 * verifier invariant, each violating exactly that invariant. The corpus
 * is the verifier's own regression suite — `nol-verify --corpus` (run
 * by CI) and test_analysis both require that every case is rejected
 * with the expected diagnostic code and a witness naming the offending
 * function or instruction.
 */
#ifndef NOL_ANALYSIS_CORPUS_HPP
#define NOL_ANALYSIS_CORPUS_HPP

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/partitionverifier.hpp"
#include "analysis/repair.hpp"

namespace nol::analysis {

/** One broken partition plus the diagnostic it must provoke. */
struct CorpusCase {
    std::string name;          ///< e.g. "machine-asm-reachable"
    std::string expectCode;    ///< diagnostic code that must fire
    support::DiagSeverity expectSeverity = support::DiagSeverity::Error;
    std::unique_ptr<ir::Module> mobile;
    std::unique_ptr<ir::Module> server;
    std::vector<std::string> targets;
    std::set<std::string> fptrMap;

    /** True if field-insensitive verification must MISS this case (it
     *  only exists at field granularity); such cases double as the
     *  differential evidence that per-field resolution catches broken
     *  partitions the legacy solver cannot. */
    bool fieldSensitiveOnly = false;

    PartitionCheckInput input() const
    {
        PartitionCheckInput in;
        in.mobile = mobile.get();
        in.server = server.get();
        in.targets = targets;
        in.fptrMap = fptrMap;
        return in;
    }

    /** Mutable view for the repair loop (owning pointers stay put). */
    RepairInput repairInput()
    {
        RepairInput in;
        in.mobile = mobile.get();
        in.server = server.get();
        in.targets = &targets;
        in.fptrMap = &fptrMap;
        return in;
    }
};

/** Build every corpus case (each owns its two modules). */
std::vector<CorpusCase> buildBrokenCorpus();

/** Verdict of running the verifier over one corpus case. */
struct CorpusOutcome {
    std::string name;
    std::string expectCode;
    /** Expected code fired at the expected severity. */
    bool fired = false;
    /** The firing diagnostic names a function/instruction (directly or
     *  through its witness chain). */
    bool witnessed = false;
    /** Full rendered diagnostics of the run (for -v / failures). */
    std::string rendered;

    bool passed() const { return fired && witnessed; }
};

/** Run verifyPartition over the whole corpus. */
std::vector<CorpusOutcome> runBrokenCorpus();

/** Verdict of running the repair loop over one corpus case. */
struct CorpusRepairOutcome {
    std::string name;
    RepairReport report;

    /** Repair drove the case to 0 diagnostics within the cap. */
    bool passed() const { return report.converged; }
};

/** Run the verify→repair fixpoint over every corpus case; each case
 *  must converge to 0 diagnostics within options.maxIterations. */
std::vector<CorpusRepairOutcome>
runBrokenCorpusWithRepair(const RepairOptions &options = {});

} // namespace nol::analysis

#endif // NOL_ANALYSIS_CORPUS_HPP

#include "analysis/pointsto.hpp"

#include "frontend/builtins.hpp"
#include "ir/callgraph.hpp"
#include "ir/printer.hpp"

namespace nol::analysis {

std::string
MemObject::str() const
{
    switch (kind) {
      case Kind::Global:
        return "global @" + value->name();
      case Kind::Function:
        return "fn @" + value->name();
      case Kind::Heap:
        return "heap site '" +
               ir::printInst(*static_cast<const ir::Instruction *>(value)) +
               "'";
      case Kind::Stack:
        return "stack slot '" +
               ir::printInst(*static_cast<const ir::Instruction *>(value)) +
               "'";
      case Kind::Unknown:
        return "<unknown>";
    }
    return "<invalid>";
}

bool
isAllocatorName(const std::string &name)
{
    return name == "malloc" || name == "calloc" || name == "realloc" ||
           name == "u_malloc" || name == "u_calloc" || name == "u_realloc";
}

namespace {

/** Builtins returning their first (destination) pointer argument. */
bool
returnsFirstArg(const std::string &name)
{
    return name == "memcpy" || name == "memmove" || name == "memset" ||
           name == "strcpy" || name == "strncpy" || name == "strcat";
}

/** Builtins that may copy stored pointers from arg1's to arg0's object. */
bool
copiesContents(const std::string &name)
{
    return name == "memcpy" || name == "memmove";
}

} // namespace

/** The worklist-free fixpoint solver (module-sized passes). */
class PointsToSolver
{
  public:
    explicit PointsToSolver(const ir::Module &module,
                            PointsToResult &result)
        : module_(module), result_(result)
    {}

    void
    run()
    {
        seed();
        bool changed = true;
        while (changed) {
            changed = false;
            ++result_.stats_.iterations;
            for (const auto &fn : module_.functions()) {
                for (const auto &bb : fn->blocks()) {
                    for (const auto &inst : bb->insts())
                        changed |= transfer(*fn, *inst);
                }
            }
        }
    }

  private:
    PtsSet &pts(const ir::Value *v) { return result_.pts_[v]; }
    PtsSet &contents(const MemObject &obj) { return result_.contents_[obj]; }

    /** dst ⊇ src; true if dst grew. */
    static bool
    addAll(PtsSet &dst, const PtsSet &src)
    {
        bool grew = false;
        for (const MemObject &obj : src)
            grew |= dst.insert(obj).second;
        return grew;
    }

    static bool
    add(PtsSet &dst, const MemObject &obj)
    {
        return dst.insert(obj).second;
    }

    void
    seed()
    {
        // Using a global or a function as an operand yields its
        // address; stored function pointers and global cross-references
        // in initializers become object contents.
        for (const auto &gv : module_.globals()) {
            add(pts(gv.get()), MemObject::global(gv.get()));
            seedInit(MemObject::global(gv.get()), gv->init());
        }
        for (const auto &fn : module_.functions())
            add(pts(fn.get()), MemObject::function(fn.get()));
    }

    void
    seedInit(const MemObject &obj, const ir::Initializer &init)
    {
        if (init.kind == ir::Initializer::Kind::Global &&
            init.global != nullptr) {
            add(contents(obj), MemObject::global(init.global));
        }
        if (init.kind == ir::Initializer::Kind::Function &&
            init.function != nullptr) {
            add(contents(obj), MemObject::function(init.function));
        }
        for (const auto &elem : init.elems)
            seedInit(obj, elem);
    }

    bool
    transfer(const ir::Function &fn, const ir::Instruction &inst)
    {
        (void)fn;
        using Op = ir::Opcode;
        switch (inst.op()) {
          case Op::Alloca:
            return add(pts(&inst), MemObject::stack(&inst));
          case Op::Load: {
            bool grew = false;
            // Copy to tolerate pts(&inst) aliasing pts(op0) growth.
            PtsSet addr = pts(inst.operand(0));
            for (const MemObject &obj : addr) {
                grew |= addAll(pts(&inst), contents(obj));
                if (obj.isUnknown())
                    grew |= add(pts(&inst), MemObject::unknown());
            }
            return grew;
          }
          case Op::Store: {
            bool grew = false;
            PtsSet addr = pts(inst.operand(1));
            const PtsSet value = pts(inst.operand(0));
            for (const MemObject &obj : addr)
                grew |= addAll(contents(obj), value);
            return grew;
          }
          case Op::FieldAddr:
          case Op::IndexAddr:
          case Op::Bitcast:
          case Op::PtrToInt:
          case Op::IntToPtr:
          case Op::Trunc:
          case Op::ZExt:
          case Op::SExt:
            // Field-insensitive: derived addresses and int round trips
            // keep pointing at the base object.
            return addAll(pts(&inst), pts(inst.operand(0)));
          case Op::Add:
          case Op::Sub: {
            // Pointer arithmetic through integers (p2i + offset).
            bool grew = addAll(pts(&inst), pts(inst.operand(0)));
            grew |= addAll(pts(&inst), pts(inst.operand(1)));
            return grew;
          }
          case Op::Select: {
            bool grew = addAll(pts(&inst), pts(inst.operand(1)));
            grew |= addAll(pts(&inst), pts(inst.operand(2)));
            return grew;
          }
          case Op::Call:
            return transferCall(inst, inst.callee(), /*first_arg=*/0);
          case Op::CallIndirect:
            return transferIndirect(inst);
          default:
            return false;
        }
    }

    /** Wire one (possibly resolved-indirect) call to @p callee. */
    bool
    transferCall(const ir::Instruction &inst, const ir::Function *callee,
                 size_t first_arg)
    {
        if (callee == nullptr)
            return false;
        if (!callee->hasBody())
            return transferExternal(inst, *callee, first_arg);

        bool grew = false;
        // Arguments flow into parameters.
        size_t nargs = inst.numOperands() - first_arg;
        for (size_t i = 0; i < std::min(nargs, callee->numArgs()); ++i) {
            grew |= addAll(pts(callee->arg(i)),
                           pts(inst.operand(first_arg + i)));
        }
        // Return values flow back into the call.
        for (const auto &bb : callee->blocks()) {
            for (const auto &ret : bb->insts()) {
                if (ret->op() == ir::Opcode::Ret && ret->numOperands() == 1)
                    grew |= addAll(pts(&inst), pts(ret->operand(0)));
            }
        }
        return grew;
    }

    bool
    transferExternal(const ir::Instruction &inst, const ir::Function &callee,
                     size_t first_arg)
    {
        const std::string &name = callee.name();
        if (isAllocatorName(name)) {
            bool grew = add(pts(&inst), MemObject::heap(&inst));
            if (name == "realloc" || name == "u_realloc") {
                // The new block inherits pointers stored in the old.
                PtsSet old = pts(inst.operand(first_arg));
                for (const MemObject &obj : old) {
                    grew |= addAll(contents(MemObject::heap(&inst)),
                                   contents(obj));
                }
            }
            return grew;
        }
        if (returnsFirstArg(name)) {
            bool grew = addAll(pts(&inst), pts(inst.operand(first_arg)));
            if (copiesContents(name) && inst.numOperands() > first_arg + 1) {
                PtsSet dst = pts(inst.operand(first_arg));
                PtsSet src = pts(inst.operand(first_arg + 1));
                for (const MemObject &dobj : dst) {
                    for (const MemObject &sobj : src)
                        grew |= addAll(contents(dobj), contents(sobj));
                }
            }
            return grew;
        }
        if (frontend::isBuiltin(name) || name == "u_free" ||
            name == "__machine_asm" || name == "__syscall") {
            // Known library routine: never stores pointers into user
            // memory and never returns one we must track.
            return false;
        }
        // Unknown external: everything reachable from the arguments
        // escapes, and the return value is untracked.
        bool grew = add(pts(&inst), MemObject::unknown());
        for (size_t i = first_arg; i < inst.numOperands(); ++i) {
            const PtsSet arg = pts(inst.operand(i));
            grew |= addAll(contents(MemObject::unknown()), arg);
            for (const MemObject &obj : arg)
                grew |= add(contents(obj), MemObject::unknown());
        }
        return grew;
    }

    bool
    transferIndirect(const ir::Instruction &inst)
    {
        bool grew = false;
        PtsSet fn_ptrs = pts(inst.operand(0));
        for (const MemObject &obj : fn_ptrs) {
            if (obj.kind == MemObject::Kind::Function) {
                grew |= transferCall(
                    inst, static_cast<const ir::Function *>(obj.value),
                    /*first_arg=*/1);
            } else if (obj.isUnknown()) {
                // Unresolvable target: the call may do anything.
                grew |= add(pts(&inst), MemObject::unknown());
                for (size_t i = 1; i < inst.numOperands(); ++i) {
                    grew |= addAll(contents(MemObject::unknown()),
                                   pts(inst.operand(i)));
                }
            }
        }
        return grew;
    }

    const ir::Module &module_;
    PointsToResult &result_;
};

const PtsSet &
PointsToResult::pointsTo(const ir::Value *v) const
{
    auto it = pts_.find(v);
    return it == pts_.end() ? empty_ : it->second;
}

const PtsSet &
PointsToResult::contents(const MemObject &obj) const
{
    auto it = contents_.find(obj);
    return it == contents_.end() ? empty_ : it->second;
}

PointsToResult::CalleeSet
PointsToResult::indirectCallees(const ir::Instruction *site) const
{
    NOL_ASSERT(site->op() == ir::Opcode::CallIndirect,
               "indirectCallees on non-indirect call '%s'",
               ir::printInst(*site).c_str());
    CalleeSet out;
    for (const MemObject &obj : pointsTo(site->operand(0))) {
        if (obj.kind == MemObject::Kind::Function)
            out.fns.insert(static_cast<const ir::Function *>(obj.value));
        else
            out.complete = false;
    }
    return out;
}

const PointsToResult::FunctionCallees &
PointsToResult::callees(const ir::Function *fn) const
{
    auto it = fn_callees_.find(fn);
    return it == fn_callees_.end() ? empty_callees_ : it->second;
}

PointsToResult::Reachable
PointsToResult::reachableFrom(
    const std::vector<const ir::Function *> &roots) const
{
    Reachable out;
    std::vector<const ir::Function *> work(roots.begin(), roots.end());
    bool fallback_applied = false;
    while (!work.empty()) {
        const ir::Function *fn = work.back();
        work.pop_back();
        if (!out.fns.insert(fn).second)
            continue;
        const FunctionCallees &cs = callees(fn);
        for (const ir::Function *callee : cs.fns)
            work.push_back(callee);
        if (!cs.complete && !fallback_applied) {
            // An unresolved indirect call may reach any address-taken
            // function (the paper's conservative rule).
            fallback_applied = true;
            out.precise = false;
            for (const ir::Function *target : address_taken_)
                work.push_back(target);
        }
    }
    return out;
}

PointsToResult
analyzePointsTo(const ir::Module &module)
{
    PointsToResult result;
    PointsToSolver(module, result).run();

    // Conservative fallback universe (includes initializer escapes).
    ir::CallGraph cg(module);
    for (const ir::Function *fn : cg.addressTaken())
        result.address_taken_.insert(fn);

    // Per-function callee sets over resolved edges.
    for (const auto &fn : module.functions()) {
        PointsToResult::FunctionCallees &cs = result.fn_callees_[fn.get()];
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() == ir::Opcode::Call &&
                    inst->callee() != nullptr) {
                    cs.fns.insert(inst->callee());
                } else if (inst->op() == ir::Opcode::CallIndirect) {
                    PointsToResult::CalleeSet site =
                        result.indirectCallees(inst.get());
                    cs.fns.insert(site.fns.begin(), site.fns.end());
                    cs.complete &= site.complete;
                }
            }
        }
    }

    // Statistics.
    std::set<MemObject> objects;
    for (const auto &[value, set] : result.pts_) {
        (void)value;
        ++result.stats_.nodes;
        result.stats_.totalEdges += set.size();
        result.stats_.maxSetSize =
            std::max(result.stats_.maxSetSize, set.size());
        objects.insert(set.begin(), set.end());
    }
    for (const auto &[obj, set] : result.contents_) {
        objects.insert(obj);
        result.stats_.totalEdges += set.size();
        objects.insert(set.begin(), set.end());
    }
    result.stats_.objects = objects.size();
    return result;
}

} // namespace nol::analysis

#include "analysis/pointsto.hpp"

#include "frontend/builtins.hpp"
#include "ir/callgraph.hpp"
#include "ir/printer.hpp"
#include "ir/type.hpp"

namespace nol::analysis {

std::string
MemObject::str() const
{
    std::string base;
    switch (kind) {
      case Kind::Global:
        base = "global @" + value->name();
        break;
      case Kind::Function:
        return "fn @" + value->name();
      case Kind::Heap:
        base = "heap site '" +
               ir::printInst(*static_cast<const ir::Instruction *>(value)) +
               "'";
        break;
      case Kind::Stack:
        base = "stack slot '" +
               ir::printInst(*static_cast<const ir::Instruction *>(value)) +
               "'";
        break;
      case Kind::Unknown:
        return "<unknown>";
      default:
        return "<invalid>";
    }
    if (hasField())
        base += " field #" + std::to_string(field);
    return base;
}

bool
isAllocatorName(const std::string &name)
{
    return name == "malloc" || name == "calloc" || name == "realloc" ||
           name == "u_malloc" || name == "u_calloc" || name == "u_realloc";
}

namespace {

/** Builtins returning their first (destination) pointer argument. */
bool
returnsFirstArg(const std::string &name)
{
    return name == "memcpy" || name == "memmove" || name == "memset" ||
           name == "strcpy" || name == "strncpy" || name == "strcat";
}

/** Builtins that may copy stored pointers from arg1's to arg0's object. */
bool
copiesContents(const std::string &name)
{
    return name == "memcpy" || name == "memmove";
}

} // namespace

/** The worklist-free fixpoint solver (module-sized passes). */
class PointsToSolver
{
  public:
    PointsToSolver(const ir::Module &module, PointsToResult &result)
        : module_(module), result_(result),
          sensitive_(result.options_.fieldSensitive)
    {}

    void
    run()
    {
        seed();
        bool changed = true;
        while (changed) {
            changed = false;
            ++result_.stats_.iterations;
            for (const auto &fn : module_.functions()) {
                for (const auto &bb : fn->blocks()) {
                    for (const auto &inst : bb->insts())
                        changed |= transfer(*fn, *inst);
                }
            }
        }
    }

  private:
    PtsSet &pts(const ir::Value *v) { return result_.pts_[v]; }
    PtsSet &contents(const MemObject &obj) { return result_.contents_[obj]; }

    /** Contents of @p obj's exact slot, without materializing it. */
    const PtsSet &
    contentsConst(const MemObject &obj) const
    {
        auto it = result_.contents_.find(obj);
        return it == result_.contents_.end() ? result_.empty_ : it->second;
    }

    /** dst ⊇ src; true if dst grew. */
    static bool
    addAll(PtsSet &dst, const PtsSet &src)
    {
        bool grew = false;
        for (const MemObject &obj : src)
            grew |= dst.insert(obj).second;
        return grew;
    }

    static bool
    add(PtsSet &dst, const MemObject &obj)
    {
        return dst.insert(obj).second;
    }

    /** Union of contents over every slot of @p obj's base object — what
     *  a load through the whole-object slot may observe. Materialized
     *  into a fresh set so callers can mutate the contents map while
     *  consuming it. */
    PtsSet
    collectAllSlots(const MemObject &obj) const
    {
        PtsSet out;
        MemObject lo = obj.base();
        for (auto it = result_.contents_.lower_bound(lo);
             it != result_.contents_.end() && it->first.sameBase(lo); ++it)
            out.insert(it->second.begin(), it->second.end());
        return out;
    }

    /** The fields (kWholeObject included) with recorded contents on
     *  @p obj's base — snapshot for slot-preserving copies. */
    std::vector<int32_t>
    slotsOf(const MemObject &obj) const
    {
        std::vector<int32_t> out;
        MemObject lo = obj.base();
        for (auto it = result_.contents_.lower_bound(lo);
             it != result_.contents_.end() && it->first.sameBase(lo); ++it)
            out.push_back(it->first.field);
        return out;
    }

    void
    seed()
    {
        // Using a global or a function as an operand yields its
        // address; stored function pointers and global cross-references
        // in initializers become object contents.
        for (const auto &gv : module_.globals()) {
            add(pts(gv.get()), MemObject::global(gv.get()));
            seedInit(MemObject::global(gv.get()), gv->valueType(),
                     gv->init());
        }
        for (const auto &fn : module_.functions())
            add(pts(fn.get()), MemObject::function(fn.get()));
    }

    /** Seed initializer-held addresses into @p obj. In field-sensitive
     *  mode a struct aggregate at the whole-object level distributes
     *  its elements into per-field slots (one level deep — nested
     *  aggregates stay in their field's slot); arrays and already-
     *  fielded objects keep everything in the current slot. */
    void
    seedInit(const MemObject &obj, const ir::Type *type,
             const ir::Initializer &init)
    {
        if (init.kind == ir::Initializer::Kind::Global &&
            init.global != nullptr) {
            add(contents(obj), MemObject::global(init.global));
        }
        if (init.kind == ir::Initializer::Kind::Function &&
            init.function != nullptr) {
            add(contents(obj), MemObject::function(init.function));
        }
        if (init.kind != ir::Initializer::Kind::Aggregate)
            return;
        const ir::StructType *st =
            (sensitive_ && !obj.hasField() && type != nullptr &&
             type->isStruct())
                ? static_cast<const ir::StructType *>(type)
                : nullptr;
        for (size_t i = 0; i < init.elems.size(); ++i) {
            if (st != nullptr && i < st->numFields()) {
                seedInit(obj.withField(static_cast<int32_t>(i)),
                         st->field(i).type, init.elems[i]);
            } else {
                seedInit(obj, nullptr, init.elems[i]);
            }
        }
    }

    bool
    transfer(const ir::Function &fn, const ir::Instruction &inst)
    {
        (void)fn;
        using Op = ir::Opcode;
        switch (inst.op()) {
          case Op::Alloca:
            return add(pts(&inst), MemObject::stack(&inst));
          case Op::Load: {
            bool grew = false;
            // Copy to tolerate pts(&inst) aliasing pts(op0) growth.
            PtsSet addr = pts(inst.operand(0));
            for (const MemObject &obj : addr) {
                if (obj.isUnknown()) {
                    grew |= addAll(pts(&inst), contents(obj));
                    grew |= add(pts(&inst), MemObject::unknown());
                } else if (!sensitive_) {
                    grew |= addAll(pts(&inst), contents(obj));
                } else if (obj.hasField()) {
                    // A field slot may also hold values written through
                    // the whole-object (unknown-offset) slot.
                    grew |= addAll(pts(&inst), contents(obj));
                    grew |= addAll(pts(&inst), contents(obj.base()));
                } else {
                    // Whole-object load: any field's contents.
                    grew |= addAll(pts(&inst), collectAllSlots(obj));
                }
            }
            return grew;
          }
          case Op::Store: {
            bool grew = false;
            PtsSet addr = pts(inst.operand(1));
            const PtsSet value = pts(inst.operand(0));
            for (const MemObject &obj : addr)
                grew |= addAll(contents(obj), value);
            return grew;
          }
          case Op::FieldAddr: {
            if (!sensitive_)
                return addAll(pts(&inst), pts(inst.operand(0)));
            bool grew = false;
            PtsSet base = pts(inst.operand(0));
            for (const MemObject &obj : base) {
                if (obj.isUnknown() || obj.hasField()) {
                    // One-level sensitivity: a nested field stays in
                    // its enclosing field's slot.
                    grew |= add(pts(&inst), obj);
                } else {
                    grew |= add(pts(&inst), obj.withField(inst.fieldIndex()));
                }
            }
            return grew;
          }
          case Op::IndexAddr:
          case Op::Bitcast:
          case Op::PtrToInt:
          case Op::IntToPtr:
          case Op::Trunc:
          case Op::ZExt:
          case Op::SExt:
            // Derived addresses and int round trips stay in their slot
            // (indexing is assumed to remain within the addressed
            // subobject, the standard C-level assumption).
            return addAll(pts(&inst), pts(inst.operand(0)));
          case Op::Add:
          case Op::Sub: {
            // Pointer arithmetic through integers (p2i + offset): the
            // offset is untyped, so collapse to the whole object.
            bool grew = false;
            for (size_t i = 0; i < 2; ++i) {
                PtsSet src = pts(inst.operand(i));
                for (const MemObject &obj : src)
                    grew |= add(pts(&inst),
                                sensitive_ ? obj.base() : obj);
            }
            return grew;
          }
          case Op::Select: {
            bool grew = addAll(pts(&inst), pts(inst.operand(1)));
            grew |= addAll(pts(&inst), pts(inst.operand(2)));
            return grew;
          }
          case Op::Call:
            return transferCall(inst, inst.callee(), /*first_arg=*/0);
          case Op::CallIndirect:
            return transferIndirect(inst);
          default:
            return false;
        }
    }

    /** Wire one (possibly resolved-indirect) call to @p callee. */
    bool
    transferCall(const ir::Instruction &inst, const ir::Function *callee,
                 size_t first_arg)
    {
        if (callee == nullptr)
            return false;
        if (!callee->hasBody())
            return transferExternal(inst, *callee, first_arg);

        bool grew = false;
        // Arguments flow into parameters.
        size_t nargs = inst.numOperands() - first_arg;
        for (size_t i = 0; i < std::min(nargs, callee->numArgs()); ++i) {
            grew |= addAll(pts(callee->arg(i)),
                           pts(inst.operand(first_arg + i)));
        }
        // Return values flow back into the call.
        for (const auto &bb : callee->blocks()) {
            for (const auto &ret : bb->insts()) {
                if (ret->op() == ir::Opcode::Ret && ret->numOperands() == 1)
                    grew |= addAll(pts(&inst), pts(ret->operand(0)));
            }
        }
        return grew;
    }

    bool
    transferExternal(const ir::Instruction &inst, const ir::Function &callee,
                     size_t first_arg)
    {
        const std::string &name = callee.name();
        if (isAllocatorName(name)) {
            bool grew = add(pts(&inst), MemObject::heap(&inst));
            if (name == "realloc" || name == "u_realloc") {
                // The new block inherits pointers stored in the old,
                // slot for slot.
                PtsSet old = pts(inst.operand(first_arg));
                for (const MemObject &obj : old) {
                    for (int32_t f : slotsOf(obj)) {
                        MemObject src = obj.base().withField(f);
                        grew |= addAll(
                            contents(MemObject::heap(&inst).withField(f)),
                            contentsConst(src));
                    }
                }
            }
            return grew;
        }
        if (returnsFirstArg(name)) {
            bool grew = addAll(pts(&inst), pts(inst.operand(first_arg)));
            if (copiesContents(name) && inst.numOperands() > first_arg + 1) {
                PtsSet dst = pts(inst.operand(first_arg));
                PtsSet src = pts(inst.operand(first_arg + 1));
                for (const MemObject &dobj : dst)
                    for (const MemObject &sobj : src)
                        grew |= transferCopy(dobj, sobj);
            }
            return grew;
        }
        if (frontend::isBuiltin(name) || name == "u_free" ||
            name == "__machine_asm" || name == "__syscall") {
            // Known library routine: never stores pointers into user
            // memory and never returns one we must track.
            return false;
        }
        // Unknown external: everything reachable from the arguments
        // escapes, and the return value is untracked. The escape is
        // written to the whole-object slot so every field load (which
        // always consults that slot) observes it.
        bool grew = add(pts(&inst), MemObject::unknown());
        for (size_t i = first_arg; i < inst.numOperands(); ++i) {
            const PtsSet arg = pts(inst.operand(i));
            grew |= addAll(contents(MemObject::unknown()), arg);
            for (const MemObject &obj : arg) {
                grew |= add(contents(obj), MemObject::unknown());
                if (sensitive_ && obj.hasField())
                    grew |= add(contents(obj.base()), MemObject::unknown());
            }
        }
        return grew;
    }

    /** memcpy-style contents copy from @p sobj into @p dobj. When both
     *  sides address whole objects the copy is slot-preserving; any
     *  field offset on either side collapses the copy into the
     *  destination's whole-object slot (sound: every field load also
     *  consults it). */
    bool
    transferCopy(const MemObject &dobj, const MemObject &sobj)
    {
        if (!sensitive_)
            return addAll(contents(dobj), contentsConst(sobj));
        bool grew = false;
        if (!dobj.hasField() && !sobj.hasField()) {
            for (int32_t f : slotsOf(sobj)) {
                grew |= addAll(contents(dobj.withField(f)),
                               contentsConst(sobj.base().withField(f)));
            }
        } else {
            grew |= addAll(contents(dobj.base()), collectAllSlots(sobj));
        }
        return grew;
    }

    bool
    transferIndirect(const ir::Instruction &inst)
    {
        bool grew = false;
        PtsSet fn_ptrs = pts(inst.operand(0));
        for (const MemObject &obj : fn_ptrs) {
            if (obj.kind == MemObject::Kind::Function) {
                grew |= transferCall(
                    inst, static_cast<const ir::Function *>(obj.value),
                    /*first_arg=*/1);
            } else if (obj.isUnknown()) {
                // Unresolvable target: the call may do anything.
                grew |= add(pts(&inst), MemObject::unknown());
                for (size_t i = 1; i < inst.numOperands(); ++i) {
                    grew |= addAll(contents(MemObject::unknown()),
                                   pts(inst.operand(i)));
                }
            }
        }
        return grew;
    }

    const ir::Module &module_;
    PointsToResult &result_;
    const bool sensitive_;
};

const PtsSet &
PointsToResult::pointsTo(const ir::Value *v) const
{
    auto it = pts_.find(v);
    return it == pts_.end() ? empty_ : it->second;
}

const PtsSet &
PointsToResult::contents(const MemObject &obj) const
{
    auto it = contents_.find(obj);
    return it == contents_.end() ? empty_ : it->second;
}

PtsSet
PointsToResult::contentsOfAllSlots(const MemObject &obj) const
{
    PtsSet out;
    MemObject lo = obj.base();
    for (auto it = contents_.lower_bound(lo);
         it != contents_.end() && it->first.sameBase(lo); ++it)
        out.insert(it->second.begin(), it->second.end());
    return out;
}

PointsToResult::CalleeSet
PointsToResult::indirectCallees(const ir::Instruction *site) const
{
    NOL_ASSERT(site->op() == ir::Opcode::CallIndirect,
               "indirectCallees on non-indirect call '%s'",
               ir::printInst(*site).c_str());
    CalleeSet out;
    for (const MemObject &obj : pointsTo(site->operand(0))) {
        if (obj.kind == MemObject::Kind::Function)
            out.fns.insert(static_cast<const ir::Function *>(obj.value));
        else
            out.complete = false;
    }
    return out;
}

const PointsToResult::FunctionCallees &
PointsToResult::callees(const ir::Function *fn) const
{
    auto it = fn_callees_.find(fn);
    return it == fn_callees_.end() ? empty_callees_ : it->second;
}

PointsToResult::Reachable
PointsToResult::reachableFrom(
    const std::vector<const ir::Function *> &roots) const
{
    Reachable out;
    std::vector<const ir::Function *> work(roots.begin(), roots.end());
    bool fallback_applied = false;
    while (!work.empty()) {
        const ir::Function *fn = work.back();
        work.pop_back();
        if (!out.fns.insert(fn).second)
            continue;
        const FunctionCallees &cs = callees(fn);
        for (const ir::Function *callee : cs.fns)
            work.push_back(callee);
        if (!cs.complete && !fallback_applied) {
            // An unresolved indirect call may reach any address-taken
            // function (the paper's conservative rule).
            fallback_applied = true;
            out.precise = false;
            for (const ir::Function *target : address_taken_)
                work.push_back(target);
        }
    }
    return out;
}

PointsToResult
analyzePointsTo(const ir::Module &module, const PointsToOptions &options)
{
    PointsToResult result;
    result.options_ = options;
    result.stats_.fieldSensitive = options.fieldSensitive;
    PointsToSolver(module, result).run();

    // Conservative fallback universe (includes initializer escapes).
    ir::CallGraph cg(module);
    for (const ir::Function *fn : cg.addressTaken())
        result.address_taken_.insert(fn);

    // Per-function callee sets over resolved edges.
    for (const auto &fn : module.functions()) {
        PointsToResult::FunctionCallees &cs = result.fn_callees_[fn.get()];
        for (const auto &bb : fn->blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->op() == ir::Opcode::Call &&
                    inst->callee() != nullptr) {
                    cs.fns.insert(inst->callee());
                } else if (inst->op() == ir::Opcode::CallIndirect) {
                    PointsToResult::CalleeSet site =
                        result.indirectCallees(inst.get());
                    cs.fns.insert(site.fns.begin(), site.fns.end());
                    cs.complete &= site.complete;
                }
            }
        }
    }

    // Statistics.
    std::set<MemObject> objects;
    for (const auto &[value, set] : result.pts_) {
        (void)value;
        ++result.stats_.nodes;
        result.stats_.totalEdges += set.size();
        result.stats_.maxSetSize =
            std::max(result.stats_.maxSetSize, set.size());
        objects.insert(set.begin(), set.end());
    }
    for (const auto &[obj, set] : result.contents_) {
        objects.insert(obj);
        result.stats_.totalEdges += set.size();
        objects.insert(set.begin(), set.end());
    }
    result.stats_.objects = objects.size();
    std::set<std::pair<int, const ir::Value *>> bases;
    for (const MemObject &obj : objects) {
        bases.insert({static_cast<int>(obj.kind), obj.value});
        if (obj.hasField())
            ++result.stats_.fieldSlots;
    }
    result.stats_.baseObjects = bases.size();
    return result;
}

} // namespace nol::analysis

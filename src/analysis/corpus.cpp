#include "analysis/corpus.hpp"

#include "ir/irbuilder.hpp"

namespace nol::analysis {

namespace {

using support::DiagSeverity;

/** i32 @kernel() { ret 0 } — the dispatch root every case starts from. */
ir::Function *
addKernel(ir::Module &module, bool with_body = true)
{
    const ir::FunctionType *fn_ty =
        module.types().functionTy(module.types().i32(), {});
    ir::Function *fn = module.createFunction("kernel", fn_ty, !with_body);
    fn->materializeArgs();
    if (!with_body)
        return fn;
    ir::IRBuilder builder(module);
    builder.setInsertPoint(fn->createBlock("entry"));
    builder.ret(module.constI32(0));
    return fn;
}

CorpusCase
makeCase(const std::string &name, const std::string &expect_code,
         DiagSeverity severity = DiagSeverity::Error)
{
    CorpusCase c;
    c.name = name;
    c.expectCode = expect_code;
    c.expectSeverity = severity;
    c.mobile = std::make_unique<ir::Module>(name + ".mobile");
    c.server = std::make_unique<ir::Module>(name + ".server");
    c.targets = {"kernel"};
    return c;
}

/** Server dispatch reaches inline assembly through a helper. */
CorpusCase
machineAsmReachable()
{
    CorpusCase c = makeCase("machine-asm-reachable", diag::kMachineSpecific);
    addKernel(*c.mobile);

    ir::Module &srv = *c.server;
    const ir::FunctionType *fn_ty =
        srv.types().functionTy(srv.types().i32(), {});
    ir::Function *spin = srv.createFunction("spin", fn_ty, false);
    spin->materializeArgs();
    ir::IRBuilder builder(srv);
    builder.setInsertPoint(spin->createBlock("entry"));
    builder.machineAsm("cpuid");
    builder.ret(srv.constI32(0));

    ir::Function *kernel = srv.createFunction("kernel", fn_ty, false);
    kernel->materializeArgs();
    builder.setInsertPoint(kernel->createBlock("entry"));
    ir::Instruction *call = builder.call(spin, {}, "t");
    builder.ret(call);
    return c;
}

/** Server dispatch calls interactive input (scanf). */
CorpusCase
interactiveIoReachable()
{
    CorpusCase c =
        makeCase("interactive-io-reachable", diag::kMachineSpecific);
    addKernel(*c.mobile);

    ir::Module &srv = *c.server;
    const ir::FunctionType *scanf_ty = srv.types().functionTy(
        srv.types().i32(), {}, /*variadic=*/true);
    ir::Function *scanf_fn = srv.createFunction("scanf", scanf_ty, true);
    scanf_fn->materializeArgs();

    const ir::FunctionType *fn_ty =
        srv.types().functionTy(srv.types().i32(), {});
    ir::Function *kernel = srv.createFunction("kernel", fn_ty, false);
    kernel->materializeArgs();
    ir::IRBuilder builder(srv);
    builder.setInsertPoint(kernel->createBlock("entry"));
    ir::Instruction *call = builder.call(scanf_fn, {}, "t");
    builder.ret(call);
    return c;
}

/** Offloaded code reads a global the unifier failed to move into UVA. */
CorpusCase
globalMissedUva()
{
    CorpusCase c = makeCase("global-missed-uva", diag::kGlobalNotUva);
    addKernel(*c.mobile);

    ir::Module &srv = *c.server;
    ir::GlobalVariable *counter = srv.createGlobal(
        "counter", srv.types().i32(), ir::Initializer::ofInt(7), false);
    // Deliberately NOT setInUva(true).

    const ir::FunctionType *fn_ty =
        srv.types().functionTy(srv.types().i32(), {});
    ir::Function *kernel = srv.createFunction("kernel", fn_ty, false);
    kernel->materializeArgs();
    ir::IRBuilder builder(srv);
    builder.setInsertPoint(kernel->createBlock("entry"));
    ir::Instruction *load = builder.load(counter, "v");
    builder.ret(load);
    return c;
}

/** Shared scaffolding of the two fptr-map cases: kernel calls through
 *  a function-pointer global that holds @worker. */
CorpusCase
fptrScaffold(const std::string &name, const std::string &expect_code,
             DiagSeverity severity)
{
    CorpusCase c = makeCase(name, expect_code, severity);
    addKernel(*c.mobile);

    ir::Module &srv = *c.server;
    const ir::FunctionType *fn_ty =
        srv.types().functionTy(srv.types().i32(), {});
    ir::Function *worker = srv.createFunction("worker", fn_ty, false);
    worker->materializeArgs();
    ir::IRBuilder builder(srv);
    builder.setInsertPoint(worker->createBlock("entry"));
    builder.ret(srv.constI32(1));

    const ir::PointerType *fn_ptr_ty = srv.types().pointerTo(fn_ty);
    ir::GlobalVariable *handler =
        srv.createGlobal("handler", fn_ptr_ty,
                         ir::Initializer::ofFunction(worker), false);
    handler->setInUva(true); // only the fptr invariant is broken here

    ir::Function *kernel = srv.createFunction("kernel", fn_ty, false);
    kernel->materializeArgs();
    builder.setInsertPoint(kernel->createBlock("entry"));
    ir::Instruction *fp = builder.load(handler, "fp");
    ir::Instruction *call = builder.callIndirect(fp, fn_ty, {}, "t");
    builder.ret(call);
    return c;
}

/** @worker flows to the indirect call but is absent from the map. */
CorpusCase
fptrMapMissing()
{
    CorpusCase c = fptrScaffold("fptr-map-missing", diag::kFptrMapMissing,
                                DiagSeverity::Error);
    c.fptrMap = {}; // worker missing
    return c;
}

/** The map carries @kernel, whose address never flows anywhere. */
CorpusCase
fptrMapExtra()
{
    CorpusCase c = fptrScaffold("fptr-map-extra", diag::kFptrMapExtra,
                                DiagSeverity::Warning);
    c.fptrMap = {"worker", "kernel"}; // kernel is dead weight
    return c;
}

/** Mobile and server clones disagree on a stack-reallocation mark. */
CorpusCase
stackMarkMismatch()
{
    CorpusCase c =
        makeCase("stack-mark-mismatch", diag::kStackMarkMismatch);
    ir::Instruction *mob_slot = nullptr;
    ir::Instruction *srv_slot = nullptr;
    for (ir::Module *module : {c.mobile.get(), c.server.get()}) {
        const ir::FunctionType *fn_ty =
            module->types().functionTy(module->types().i32(), {});
        ir::Function *kernel = module->createFunction("kernel", fn_ty,
                                                      false);
        kernel->materializeArgs();
        ir::IRBuilder builder(*module);
        builder.setInsertPoint(kernel->createBlock("entry"));
        ir::Instruction *slot =
            builder.alloca_(module->types().i32(), "buf");
        builder.store(module->constI32(0), slot);
        ir::Instruction *load = builder.load(slot, "v");
        builder.ret(load);
        (module == c.mobile.get() ? mob_slot : srv_slot) = slot;
    }
    (void)mob_slot;
    srv_slot->setUvaStack(true); // server clone alone marks the slot
    return c;
}

/** Server kernel's entry block lacks a terminator. */
CorpusCase
structuralUnterminated()
{
    CorpusCase c =
        makeCase("structural-unterminated", diag::kStructural);
    addKernel(*c.mobile);

    ir::Module &srv = *c.server;
    const ir::FunctionType *fn_ty =
        srv.types().functionTy(srv.types().i32(), {});
    ir::Function *kernel = srv.createFunction("kernel", fn_ty, false);
    kernel->materializeArgs();
    ir::IRBuilder builder(srv);
    builder.setInsertPoint(kernel->createBlock("entry"));
    builder.alloca_(srv.types().i32(), "buf"); // ... and nothing after
    return c;
}

/** The declared offload target has no body on the server. */
CorpusCase
targetMissing()
{
    CorpusCase c = makeCase("target-missing", diag::kTargetMissing);
    addKernel(*c.mobile);
    addKernel(*c.server, /*with_body=*/false);
    return c;
}

/** A struct-held dispatch table: kernel calls through slot 1 only, yet
 *  the map lacks slot 1's callee. Field-sensitive resolution needs —
 *  and repair restores — exactly {@fast}; the insensitive solver would
 *  collapse the table and demand slot 0's @slow as well. */
CorpusCase
fptrSlotMissing()
{
    CorpusCase c = makeCase("fptr-slot-missing", diag::kFptrMapMissing);
    addKernel(*c.mobile);

    ir::Module &srv = *c.server;
    const ir::FunctionType *fn_ty =
        srv.types().functionTy(srv.types().i32(), {});
    ir::IRBuilder builder(srv);
    ir::Function *slow = srv.createFunction("slow", fn_ty, false);
    slow->materializeArgs();
    builder.setInsertPoint(slow->createBlock("entry"));
    builder.ret(srv.constI32(1));
    ir::Function *fast = srv.createFunction("fast", fn_ty, false);
    fast->materializeArgs();
    builder.setInsertPoint(fast->createBlock("entry"));
    builder.ret(srv.constI32(2));

    const ir::PointerType *fn_ptr_ty = srv.types().pointerTo(fn_ty);
    ir::StructType *table_ty = srv.types().createStruct(
        "Dispatch", {{"slow", fn_ptr_ty}, {"fast", fn_ptr_ty}});
    ir::GlobalVariable *table = srv.createGlobal(
        "table", table_ty,
        ir::Initializer::aggregate({ir::Initializer::ofFunction(slow),
                                    ir::Initializer::ofFunction(fast)}),
        false);
    table->setInUva(true); // only the fptr invariant is broken here

    ir::Function *kernel = srv.createFunction("kernel", fn_ty, false);
    kernel->materializeArgs();
    builder.setInsertPoint(kernel->createBlock("entry"));
    ir::Instruction *slot = builder.fieldAddr(table, 1, "slot");
    ir::Instruction *fp = builder.load(slot, "fp");
    ir::Instruction *call = builder.callIndirect(fp, fn_ty, {}, "t");
    builder.ret(call);
    c.fptrMap = {}; // fast missing (slow is NOT needed per-slot)
    return c;
}

/** A UVA struct global whose field marks cover only field #0, while
 *  the kernel reads field #1. gv->inUva() is still true, so field-
 *  insensitive verification accepts this partition — only the
 *  field-granular check can reject (and repair) it. */
CorpusCase
globalFieldNotUva()
{
    CorpusCase c = makeCase("global-field-not-uva", diag::kGlobalNotUva);
    c.fieldSensitiveOnly = true;
    addKernel(*c.mobile);

    ir::Module &srv = *c.server;
    ir::StructType *cfg_ty = srv.types().createStruct(
        "Cfg", {{"scale", srv.types().i32()}, {"bias", srv.types().i32()}});
    ir::GlobalVariable *cfg = srv.createGlobal(
        "cfg", cfg_ty,
        ir::Initializer::aggregate(
            {ir::Initializer::ofInt(3), ir::Initializer::ofInt(4)}),
        false);
    cfg->setInUva(true);
    cfg->setUvaFields({0}); // bias (field #1) deliberately unmarked

    const ir::FunctionType *fn_ty =
        srv.types().functionTy(srv.types().i32(), {});
    ir::Function *kernel = srv.createFunction("kernel", fn_ty, false);
    kernel->materializeArgs();
    ir::IRBuilder builder(srv);
    builder.setInsertPoint(kernel->createBlock("entry"));
    ir::Instruction *bias = builder.fieldAddr(cfg, 1, "bias");
    ir::Instruction *load = builder.load(bias, "v");
    builder.ret(load);
    return c;
}

} // namespace

std::vector<CorpusCase>
buildBrokenCorpus()
{
    std::vector<CorpusCase> corpus;
    corpus.push_back(machineAsmReachable());
    corpus.push_back(interactiveIoReachable());
    corpus.push_back(globalMissedUva());
    corpus.push_back(fptrMapMissing());
    corpus.push_back(fptrMapExtra());
    corpus.push_back(stackMarkMismatch());
    corpus.push_back(structuralUnterminated());
    corpus.push_back(targetMissing());
    corpus.push_back(fptrSlotMissing());
    corpus.push_back(globalFieldNotUva());
    return corpus;
}

std::vector<CorpusOutcome>
runBrokenCorpus()
{
    std::vector<CorpusOutcome> outcomes;
    for (const CorpusCase &c : buildBrokenCorpus()) {
        support::DiagnosticEngine engine;
        verifyPartition(c.input(), engine);

        CorpusOutcome outcome;
        outcome.name = c.name;
        outcome.expectCode = c.expectCode;
        outcome.rendered = engine.render();
        for (const support::Diagnostic *d : engine.byCode(c.expectCode)) {
            if (d->severity != c.expectSeverity)
                continue;
            outcome.fired = true;
            bool names_something = !d->function.empty() ||
                                   !d->instruction.empty() ||
                                   !d->witness.empty() ||
                                   d->message.find('@') !=
                                       std::string::npos;
            outcome.witnessed = outcome.witnessed || names_something;
        }
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

std::vector<CorpusRepairOutcome>
runBrokenCorpusWithRepair(const RepairOptions &options)
{
    std::vector<CorpusRepairOutcome> outcomes;
    std::vector<CorpusCase> corpus = buildBrokenCorpus();
    for (CorpusCase &c : corpus) {
        CorpusRepairOutcome outcome;
        outcome.name = c.name;
        outcome.report = repairPartition(c.repairInput(), options);
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

} // namespace nol::analysis

/**
 * @file
 * Verifier-driven partition repair: close the loop from diagnostics
 * back into the partition. Every verifier finding carries enough
 * provenance (Diagnostic::subject + field) to *fix* the invariant it
 * proves broken instead of merely rejecting the module pair:
 *
 *  - global-not-uva        → promote the global into UVA (or widen a
 *                            field-limited mark by the missing field);
 *  - fptr-map-missing      → insert the function into the fptr map;
 *  - fptr-map-extra        → drop the dead map entry;
 *  - dispatch-machine-specific / target-missing
 *                          → demote the target to local-only execution
 *                            (remove it from the dispatch roots);
 *  - stack-mark-mismatch   → align the clones by OR-ing the marks;
 *  - structural            → strip the malformed function's body (the
 *                            cascade then demotes any target that lost
 *                            its body, which is the point: repair runs
 *                            verify → fix → re-verify to a fixpoint).
 *
 * The loop is bounded (RepairOptions::maxIterations); the report says
 * whether it converged to 0 diagnostics, what it changed, and hence
 * what the precision cost of shipping the repaired partition is.
 */
#ifndef NOL_ANALYSIS_REPAIR_HPP
#define NOL_ANALYSIS_REPAIR_HPP

#include <set>
#include <string>
#include <vector>

#include "analysis/partitionverifier.hpp"

namespace nol::analysis {

/** Repair-loop configuration. */
struct RepairOptions {
    /** Master switch: off = verify once, repair nothing (the report
     *  then just mirrors the verification verdict). */
    bool enabled = true;
    /** Fixpoint cap: maximum verify→repair rounds. Every action list
     *  in the corpus converges within 3; the cap only guards against
     *  an unrepairable diagnostic ping-ponging. */
    size_t maxIterations = 8;
};

/** The mutable half of a partition the repair loop may rewrite. */
struct RepairInput {
    ir::Module *mobile = nullptr;
    ir::Module *server = nullptr;
    /** Dispatch roots; repair may demote (erase) targets. */
    std::vector<std::string> *targets = nullptr;
    /** Function-pointer translation map; repair may extend/shrink it. */
    std::set<std::string> *fptrMap = nullptr;
    TaintPolicy policy;
    bool fieldSensitive = true;

    /** The verifier view of the current (possibly repaired) state. */
    PartitionCheckInput check() const
    {
        PartitionCheckInput in;
        in.mobile = mobile;
        in.server = server;
        in.targets = *targets;
        in.fptrMap = *fptrMap;
        in.policy = policy;
        in.fieldSensitive = fieldSensitive;
        return in;
    }
};

/** One applied fix. */
struct RepairAction {
    std::string code;    ///< diagnostic code that triggered the fix
    std::string subject; ///< global/function/map-entry acted on
    int32_t field = -1;  ///< field index for field-granular fixes
    std::string detail;  ///< human-readable description of the fix
};

/** What the repair loop did. */
struct RepairReport {
    /** Reached 0 diagnostics (errors *and* warnings) within the cap. */
    bool converged = false;
    /** Verify passes run (1 = already clean / repair disabled). */
    size_t iterations = 0;
    std::vector<RepairAction> actions;

    // Precision-cost counters: everything promoted/widened is state
    // the sharper analysis had excluded and the fleet now ships again.
    size_t globalsPromoted = 0;    ///< globals moved into UVA
    size_t fieldsPromoted = 0;     ///< field marks widened (or cleared)
    size_t fptrAdded = 0;          ///< fptr map entries inserted
    size_t fptrDropped = 0;        ///< dead fptr map entries removed
    size_t targetsDemoted = 0;     ///< targets demoted to local-only
    size_t stackMarksAligned = 0;  ///< clone mark pairs OR-aligned
    size_t bodiesStripped = 0;     ///< malformed bodies removed

    /** Diagnostics of the final verify pass (empty iff converged). */
    support::DiagnosticEngine remaining;

    size_t totalActions() const { return actions.size(); }
};

/**
 * Run the bounded verify → repair fixpoint over @p input. With
 * options.enabled == false this is a single verification pass.
 */
RepairReport repairPartition(const RepairInput &input,
                             const RepairOptions &options = {});

} // namespace nol::analysis

#endif // NOL_ANALYSIS_REPAIR_HPP

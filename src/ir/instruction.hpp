/**
 * @file
 * Instruction set of the offloading IR. The IR is register-based and
 * alloca-form (mutable locals live in stack slots, so no phi nodes are
 * needed); each instruction yields at most one value.
 */
#ifndef NOL_IR_INSTRUCTION_HPP
#define NOL_IR_INSTRUCTION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.hpp"

namespace nol::ir {

class BasicBlock;
class Function;

/** Every operation the IR supports. */
enum class Opcode {
    // Memory
    Alloca,     ///< reserve a stack slot; yields its address
    Load,       ///< load accessType() from operand 0 (a pointer)
    Store,      ///< store operand 0 to pointer operand 1
    // Integer arithmetic / bitwise
    Add, Sub, Mul, SDiv, UDiv, SRem, URem,
    And, Or, Xor, Shl, LShr, AShr,
    // Floating point arithmetic
    FAdd, FSub, FMul, FDiv,
    // Integer compare (yields i1)
    ICmpEq, ICmpNe, ICmpSlt, ICmpSle, ICmpSgt, ICmpSge,
    ICmpUlt, ICmpUle, ICmpUgt, ICmpUge,
    // Float compare (yields i1)
    FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,
    // Conversions
    Trunc, ZExt, SExt, FPToSI, SIToFP, FPTrunc, FPExt,
    Bitcast, PtrToInt, IntToPtr,
    // Address computation
    FieldAddr,  ///< &ptr->field_idx of structType()
    IndexAddr,  ///< ptr + index * sizeof(accessType())
    // Calls
    Call,         ///< direct call of callee()
    CallIndirect, ///< call through function pointer operand 0
    // Misc
    Select,     ///< operand 0 ? operand 1 : operand 2
    // Terminators
    Br,         ///< unconditional branch to successor 0
    CondBr,     ///< operand 0 ? successor 0 : successor 1
    Switch,     ///< jump table on operand 0; successor 0 is the default
    Ret,        ///< return (operand 0 if non-void)
    // Machine-specific marker: inline assembly the filter must reject
    MachineAsm,
    Unreachable,
};

/** Printable mnemonic of @p op. */
const char *opcodeName(Opcode op);

/** True if @p op ends a basic block. */
bool isTerminator(Opcode op);

/**
 * One IR instruction. A deliberately "fat node" design: a single class
 * carries optional fields (access type, struct field, callee, switch
 * cases) rather than a deep subclass tree — the interpreter and passes
 * switch on the opcode anyway.
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, const Type *result_type, std::string name)
        : Value(Kind::Instruction, result_type, std::move(name)), op_(op)
    {}

    Opcode op() const { return op_; }

    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    // --- Operands -------------------------------------------------------
    const std::vector<Value *> &operands() const { return operands_; }
    Value *
    operand(size_t idx) const
    {
        NOL_ASSERT(idx < operands_.size(), "operand %zu out of range on %s",
                   idx, opcodeName(op_));
        return operands_[idx];
    }
    size_t numOperands() const { return operands_.size(); }
    void addOperand(Value *v) { operands_.push_back(v); }
    void
    setOperand(size_t idx, Value *v)
    {
        NOL_ASSERT(idx < operands_.size(), "operand %zu out of range", idx);
        operands_[idx] = v;
    }

    // --- Successors (terminators only) ----------------------------------
    const std::vector<BasicBlock *> &successors() const { return succs_; }
    BasicBlock *
    successor(size_t idx) const
    {
        NOL_ASSERT(idx < succs_.size(), "successor %zu out of range", idx);
        return succs_[idx];
    }
    void addSuccessor(BasicBlock *bb) { succs_.push_back(bb); }
    void
    setSuccessor(size_t idx, BasicBlock *bb)
    {
        NOL_ASSERT(idx < succs_.size(), "successor %zu out of range", idx);
        succs_[idx] = bb;
    }

    bool isTerminator() const { return ir::isTerminator(op_); }

    // --- Memory / address extras ----------------------------------------
    /** Type loaded/stored/allocated/indexed over. */
    const Type *accessType() const { return access_type_; }
    void setAccessType(const Type *t) { access_type_ = t; }

    /** Struct addressed by FieldAddr. */
    const StructType *structType() const { return struct_type_; }
    void setStructType(const StructType *t) { struct_type_ = t; }

    /** Field index of FieldAddr. */
    unsigned fieldIndex() const { return field_index_; }
    void setFieldIndex(unsigned idx) { field_index_ = idx; }

    // --- Call extras ------------------------------------------------------
    /** Direct callee (Call) — may be external/builtin. */
    Function *callee() const { return callee_; }
    void setCallee(Function *fn) { callee_ = fn; }

    /** Signature of an indirect call. */
    const FunctionType *calleeType() const { return callee_type_; }
    void setCalleeType(const FunctionType *t) { callee_type_ = t; }

    // --- Switch extras ----------------------------------------------------
    /** Case values; case i branches to successor i+1 (0 is default). */
    const std::vector<int64_t> &caseValues() const { return case_values_; }
    void addCase(int64_t value) { case_values_.push_back(value); }

    // --- MachineAsm extras -------------------------------------------------
    const std::string &asmText() const { return asm_text_; }
    void setAsmText(std::string text) { asm_text_ = std::move(text); }

    // --- Alloca extras ------------------------------------------------------
    /**
     * Stack-reallocation mark (paper Sec. 3.2): set by the memory
     * unifier on Alloca slots whose address escapes from an
     * offload-reachable frame, so both binaries place the slot in
     * unified space. The partition verifier checks the mobile and
     * server clones agree on every mark.
     */
    bool uvaStack() const { return uva_stack_; }
    void setUvaStack(bool v) { uva_stack_ = v; }

  private:
    Opcode op_;
    BasicBlock *parent_ = nullptr;
    std::vector<Value *> operands_;
    std::vector<BasicBlock *> succs_;
    const Type *access_type_ = nullptr;
    const StructType *struct_type_ = nullptr;
    unsigned field_index_ = 0;
    Function *callee_ = nullptr;
    const FunctionType *callee_type_ = nullptr;
    std::vector<int64_t> case_values_;
    std::string asm_text_;
    bool uva_stack_ = false;
};

} // namespace nol::ir

#endif // NOL_IR_INSTRUCTION_HPP

#include "ir/irbuilder.hpp"

namespace nol::ir {

Instruction *
IRBuilder::emit(std::unique_ptr<Instruction> inst)
{
    NOL_ASSERT(bb_ != nullptr, "no insertion point set");
    if (insert_idx_ < 0)
        return bb_->append(std::move(inst));
    Instruction *out =
        bb_->insertAt(static_cast<size_t>(insert_idx_), std::move(inst));
    ++insert_idx_;
    return out;
}

Instruction *
IRBuilder::alloca_(const Type *type, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Alloca, types().pointerTo(type), name);
    inst->setAccessType(type);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::load(Value *ptr, const std::string &name)
{
    NOL_ASSERT(ptr->type()->isPointer(), "load from non-pointer %s",
               ptr->type()->str().c_str());
    const Type *value_type =
        static_cast<const PointerType *>(ptr->type())->pointee();
    NOL_ASSERT(value_type->isScalar(), "load of non-scalar type %s",
               value_type->str().c_str());
    auto inst =
        std::make_unique<Instruction>(Opcode::Load, value_type, name);
    inst->setAccessType(value_type);
    inst->addOperand(ptr);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::store(Value *value, Value *ptr)
{
    NOL_ASSERT(ptr->type()->isPointer(), "store to non-pointer %s",
               ptr->type()->str().c_str());
    auto inst =
        std::make_unique<Instruction>(Opcode::Store, types().voidTy(), "");
    inst->setAccessType(value->type());
    inst->addOperand(value);
    inst->addOperand(ptr);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::binary(Opcode op, Value *lhs, Value *rhs, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(op, lhs->type(), name);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::cmp(Opcode op, Value *lhs, Value *rhs, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(op, types().i1(), name);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::cast(Opcode op, Value *value, const Type *to,
                const std::string &name)
{
    auto inst = std::make_unique<Instruction>(op, to, name);
    inst->addOperand(value);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::fieldAddr(Value *base, unsigned field_idx, const std::string &name)
{
    NOL_ASSERT(base->type()->isPointer(), "fieldAddr base is not a pointer");
    const Type *pointee =
        static_cast<const PointerType *>(base->type())->pointee();
    NOL_ASSERT(pointee->isStruct(), "fieldAddr base does not point to struct");
    const auto *st = static_cast<const StructType *>(pointee);
    const Type *field_type = st->field(field_idx).type;
    auto inst = std::make_unique<Instruction>(
        Opcode::FieldAddr, types().pointerTo(field_type), name);
    inst->setStructType(st);
    inst->setFieldIndex(field_idx);
    inst->addOperand(base);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::indexAddr(Value *base, Value *index, const std::string &name)
{
    NOL_ASSERT(base->type()->isPointer(), "indexAddr base is not a pointer");
    const Type *elem =
        static_cast<const PointerType *>(base->type())->pointee();
    auto inst = std::make_unique<Instruction>(
        Opcode::IndexAddr, types().pointerTo(elem), name);
    inst->setAccessType(elem);
    inst->addOperand(base);
    inst->addOperand(index);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::call(Function *callee, std::vector<Value *> args,
                const std::string &name)
{
    const FunctionType *fn_type = callee->functionType();
    NOL_ASSERT(args.size() >= fn_type->params().size(),
               "call to %s with too few arguments", callee->name().c_str());
    auto inst = std::make_unique<Instruction>(
        Opcode::Call, fn_type->returnType(), name);
    inst->setCallee(callee);
    inst->setCalleeType(fn_type);
    for (Value *arg : args)
        inst->addOperand(arg);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::callIndirect(Value *fn_ptr, const FunctionType *fn_type,
                        std::vector<Value *> args, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::CallIndirect, fn_type->returnType(), name);
    inst->setCalleeType(fn_type);
    inst->addOperand(fn_ptr);
    for (Value *arg : args)
        inst->addOperand(arg);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::select(Value *cond, Value *if_true, Value *if_false,
                  const std::string &name)
{
    auto inst =
        std::make_unique<Instruction>(Opcode::Select, if_true->type(), name);
    inst->addOperand(cond);
    inst->addOperand(if_true);
    inst->addOperand(if_false);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::br(BasicBlock *dest)
{
    auto inst = std::make_unique<Instruction>(Opcode::Br, types().voidTy(), "");
    inst->addSuccessor(dest);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::condBr(Value *cond, BasicBlock *if_true, BasicBlock *if_false)
{
    auto inst =
        std::make_unique<Instruction>(Opcode::CondBr, types().voidTy(), "");
    inst->addOperand(cond);
    inst->addSuccessor(if_true);
    inst->addSuccessor(if_false);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::switch_(Value *value, BasicBlock *default_dest)
{
    auto inst =
        std::make_unique<Instruction>(Opcode::Switch, types().voidTy(), "");
    inst->addOperand(value);
    inst->addSuccessor(default_dest);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::ret(Value *value)
{
    auto inst = std::make_unique<Instruction>(Opcode::Ret, types().voidTy(), "");
    if (value != nullptr)
        inst->addOperand(value);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::unreachable()
{
    return emit(std::make_unique<Instruction>(Opcode::Unreachable,
                                              types().voidTy(), ""));
}

Instruction *
IRBuilder::machineAsm(const std::string &text)
{
    auto inst = std::make_unique<Instruction>(Opcode::MachineAsm,
                                              types().voidTy(), "");
    inst->setAsmText(text);
    return emit(std::move(inst));
}

} // namespace nol::ir

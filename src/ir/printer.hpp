/**
 * @file
 * Textual dump of IR modules/functions for debugging, golden tests and
 * human inspection of the partitioner's output.
 */
#ifndef NOL_IR_PRINTER_HPP
#define NOL_IR_PRINTER_HPP

#include <string>

#include "ir/module.hpp"

namespace nol::ir {

/** Render a whole module. */
std::string printModule(const Module &module);

/** Render one function. */
std::string printFunction(const Function &fn);

/** Render one instruction (without trailing newline). */
std::string printInst(const Instruction &inst);

} // namespace nol::ir

#endif // NOL_IR_PRINTER_HPP

/**
 * @file
 * Loop outlining: extract a structured loop into its own function so
 * the target selector can treat loops as offload candidates (the paper
 * offloads targets like "main_for.cond" and "try_place_while.cond").
 */
#ifndef NOL_IR_OUTLINE_HPP
#define NOL_IR_OUTLINE_HPP

#include <string>

#include "ir/module.hpp"

namespace nol::ir {

/** Result of an outlining attempt. */
struct OutlineResult {
    bool ok = false;          ///< false if the loop is not outlineable
    std::string reason;       ///< why outlining was rejected
    Function *fn = nullptr;   ///< the new loop function on success
};

/**
 * Check whether @p loop of @p fn can be outlined: a unique preheader,
 * a unique exit block, and no SSA values flowing out of the loop
 * (front-end alloca-form code always satisfies the last condition).
 */
OutlineResult canOutlineLoop(Function &fn, const LoopMeta &loop);

/**
 * Outline @p loop of @p fn into a new function named @p new_name.
 * Live-in values become parameters; the call replaces the loop in @p fn.
 * Inner-loop metadata moves to the new function. Panics if the loop is
 * not outlineable (call canOutlineLoop first).
 */
Function *outlineLoop(Module &module, Function &fn, const std::string &loop_name,
                      const std::string &new_name);

} // namespace nol::ir

#endif // NOL_IR_OUTLINE_HPP

#include "ir/module.hpp"

namespace nol::ir {

Function *
CloneMap::fn(const Function *fn) const
{
    auto it = values.find(fn);
    NOL_ASSERT(it != values.end(), "function %s not in clone map",
               fn->name().c_str());
    return static_cast<Function *>(it->second);
}

GlobalVariable *
CloneMap::global(const GlobalVariable *gv) const
{
    auto it = values.find(gv);
    NOL_ASSERT(it != values.end(), "global %s not in clone map",
               gv->name().c_str());
    return static_cast<GlobalVariable *>(it->second);
}

Module::Module(std::string name)
    : name_(std::move(name)), types_(std::make_shared<TypeContext>())
{
}

Function *
Module::createFunction(const std::string &name, const FunctionType *type,
                       bool external)
{
    NOL_ASSERT(functionByName(name) == nullptr, "duplicate function %s",
               name.c_str());
    const PointerType *ptr_type = types_->pointerTo(type);
    functions_.push_back(
        std::make_unique<Function>(type, ptr_type, name, this, external));
    return functions_.back().get();
}

Function *
Module::functionByName(const std::string &name) const
{
    for (const auto &fn : functions_) {
        if (fn->name() == name)
            return fn.get();
    }
    return nullptr;
}

void
Module::removeFunction(Function *fn)
{
    for (size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i].get() == fn) {
            functions_.erase(functions_.begin() + static_cast<ptrdiff_t>(i));
            return;
        }
    }
    panic("function %s not found in module %s", fn->name().c_str(),
          name_.c_str());
}

GlobalVariable *
Module::createGlobal(const std::string &name, const Type *value_type,
                     Initializer init, bool is_const)
{
    NOL_ASSERT(globalByName(name) == nullptr, "duplicate global %s",
               name.c_str());
    const PointerType *ptr_type = types_->pointerTo(value_type);
    globals_.push_back(std::make_unique<GlobalVariable>(
        ptr_type, value_type, name, std::move(init), is_const));
    return globals_.back().get();
}

GlobalVariable *
Module::globalByName(const std::string &name) const
{
    for (const auto &gv : globals_) {
        if (gv->name() == name)
            return gv.get();
    }
    return nullptr;
}

ConstInt *
Module::constInt(const IntType *type, int64_t value)
{
    constants_.push_back(std::make_unique<ConstInt>(type, value));
    return static_cast<ConstInt *>(constants_.back().get());
}

ConstInt *
Module::constI32(int64_t value)
{
    return constInt(types_->i32(), value);
}

ConstInt *
Module::constI64(int64_t value)
{
    return constInt(types_->i64(), value);
}

ConstInt *
Module::constBool(bool value)
{
    return constInt(types_->i1(), value ? 1 : 0);
}

ConstFloat *
Module::constFloat(const FloatType *type, double value)
{
    constants_.push_back(std::make_unique<ConstFloat>(type, value));
    return static_cast<ConstFloat *>(constants_.back().get());
}

ConstNull *
Module::constNull(const PointerType *type)
{
    constants_.push_back(std::make_unique<ConstNull>(type));
    return static_cast<ConstNull *>(constants_.back().get());
}

namespace {

/** Clone one instruction shell (operands filled in later). */
std::unique_ptr<Instruction>
cloneInstShell(const Instruction *inst)
{
    auto copy = std::make_unique<Instruction>(inst->op(), inst->type(),
                                              inst->name());
    copy->setAccessType(inst->accessType());
    copy->setStructType(inst->structType());
    copy->setFieldIndex(inst->fieldIndex());
    copy->setCalleeType(inst->calleeType());
    copy->setAsmText(inst->asmText());
    copy->setUvaStack(inst->uvaStack());
    for (int64_t case_value : inst->caseValues())
        copy->addCase(case_value);
    return copy;
}

/** Remap an initializer's global/function references through @p map. */
Initializer
remapInit(const Initializer &init, const CloneMap &map)
{
    Initializer out = init;
    if (init.kind == Initializer::Kind::Global && init.global != nullptr)
        out.global = map.global(init.global);
    if (init.kind == Initializer::Kind::Function && init.function != nullptr)
        out.function = map.fn(init.function);
    out.elems.clear();
    for (const auto &elem : init.elems)
        out.elems.push_back(remapInit(elem, map));
    return out;
}

} // namespace

std::unique_ptr<Module>
Module::clone(const std::string &new_name, CloneMap &map) const
{
    auto out = std::make_unique<Module>(new_name);
    out->types_ = types_; // clones share the type context
    out->unified_abi_ = unified_abi_;

    // Pass 1: create globals with placeholder initializers.
    for (const auto &gv : globals_) {
        GlobalVariable *ngv = out->createGlobal(
            gv->name(), gv->valueType(), Initializer::zero(), gv->isConst());
        ngv->setInUva(gv->inUva());
        if (gv->uvaFieldLimited())
            ngv->setUvaFields(gv->uvaFields());
        map.values[gv.get()] = ngv;
    }

    // Pass 2: create function declarations.
    for (const auto &fn : functions_) {
        Function *nfn = out->createFunction(fn->name(), fn->functionType(),
                                            fn->isExternal());
        map.values[fn.get()] = nfn;
    }

    // Pass 3: fix global initializers (they may reference fns/globals).
    for (const auto &gv : globals_)
        map.global(gv.get())->setInit(remapInit(gv->init(), map));

    // Operand mapper; constants are re-created in the new module.
    auto map_value = [&](Value *v) -> Value * {
        auto it = map.values.find(v);
        if (it != map.values.end())
            return it->second;
        switch (v->valueKind()) {
          case Value::Kind::ConstInt: {
            auto *ci = static_cast<ConstInt *>(v);
            Value *nv = out->constInt(static_cast<const IntType *>(ci->type()),
                                      ci->value());
            map.values[v] = nv;
            return nv;
          }
          case Value::Kind::ConstFloat: {
            auto *cf = static_cast<ConstFloat *>(v);
            Value *nv = out->constFloat(
                static_cast<const FloatType *>(cf->type()), cf->value());
            map.values[v] = nv;
            return nv;
          }
          case Value::Kind::ConstNull: {
            Value *nv = out->constNull(
                static_cast<const PointerType *>(v->type()));
            map.values[v] = nv;
            return nv;
          }
          default:
            panic("unmapped value '%s' during module clone",
                  v->name().c_str());
        }
    };

    // Pass 4: clone bodies.
    for (const auto &fn : functions_) {
        Function *nfn = map.fn(fn.get());

        std::vector<std::string> arg_names;
        arg_names.reserve(fn->numArgs());
        for (const auto &arg : fn->args())
            arg_names.push_back(arg->name());
        nfn->materializeArgs(arg_names);
        for (size_t i = 0; i < fn->numArgs(); ++i)
            map.values[fn->arg(i)] = nfn->arg(i);

        if (!fn->hasBody())
            continue;

        for (const auto &bb : fn->blocks())
            map.blocks[bb.get()] = nfn->createBlock(bb->name());

        // Create instruction shells first so forward references to
        // later-defined values (cross-block) resolve.
        for (const auto &bb : fn->blocks()) {
            BasicBlock *nbb = map.blocks[bb.get()];
            for (const auto &inst : bb->insts()) {
                Instruction *ninst = nbb->append(cloneInstShell(inst.get()));
                map.values[inst.get()] = ninst;
            }
        }

        // Fill operands, successors and callees.
        for (const auto &bb : fn->blocks()) {
            BasicBlock *nbb = map.blocks[bb.get()];
            for (size_t i = 0; i < bb->size(); ++i) {
                const Instruction *inst = bb->inst(i);
                Instruction *ninst = nbb->inst(i);
                for (Value *op : inst->operands())
                    ninst->addOperand(map_value(op));
                for (BasicBlock *succ : inst->successors())
                    ninst->addSuccessor(map.blocks.at(succ));
                if (inst->callee() != nullptr)
                    ninst->setCallee(map.fn(inst->callee()));
            }
        }

        // Remap loop metadata.
        for (const LoopMeta &loop : fn->loops()) {
            LoopMeta nloop;
            nloop.name = loop.name;
            nloop.preheader = loop.preheader != nullptr
                                  ? map.blocks.at(loop.preheader)
                                  : nullptr;
            nloop.header = map.blocks.at(loop.header);
            nloop.exit = loop.exit != nullptr ? map.blocks.at(loop.exit)
                                              : nullptr;
            for (BasicBlock *lb : loop.blocks)
                nloop.blocks.push_back(map.blocks.at(lb));
            nfn->addLoop(std::move(nloop));
        }
    }

    return out;
}

} // namespace nol::ir

/**
 * @file
 * Type system of the offloading IR. Types are interned in and owned by
 * a TypeContext (one per Module); all Type pointers are non-owning and
 * valid for the context's lifetime.
 *
 * Struct types may carry an *explicit layout*: after the memory
 * unification pass (paper Sec. 3.2) every struct is pinned to the
 * mobile ABI's offsets, so the mobile and server binaries read the same
 * field from the same address. Structs without an explicit layout are
 * laid out per-architecture by DataLayout.
 */
#ifndef NOL_IR_TYPE_HPP
#define NOL_IR_TYPE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/archspec.hpp"
#include "support/logging.hpp"

namespace nol::ir {

class TypeContext;

/** Base class of all IR types. */
class Type
{
  public:
    /** Discriminator for the concrete type class. */
    enum class Kind {
        Void,
        Int,      ///< i1/i8/i16/i32/i64
        Float,    ///< f32/f64
        Pointer,
        Struct,
        Array,
        Function,
    };

    virtual ~Type() = default;

    Kind kind() const { return kind_; }

    bool isVoid() const { return kind_ == Kind::Void; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isFloat() const { return kind_ == Kind::Float; }
    bool isPointer() const { return kind_ == Kind::Pointer; }
    bool isStruct() const { return kind_ == Kind::Struct; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isFunction() const { return kind_ == Kind::Function; }

    /** True for int, float and pointer types. */
    bool isScalar() const { return isInt() || isFloat() || isPointer(); }

    /** Render like "i32", "double", "Piece*", "[64 x Piece]". */
    virtual std::string str() const = 0;

  protected:
    explicit Type(Kind kind) : kind_(kind) {}

  private:
    Kind kind_;
};

/** Void type (function returns only). */
class VoidType : public Type
{
  public:
    VoidType() : Type(Kind::Void) {}
    std::string str() const override { return "void"; }
};

/** Fixed-width integer type; width in bits is 1, 8, 16, 32 or 64. */
class IntType : public Type
{
  public:
    explicit IntType(uint32_t bits) : Type(Kind::Int), bits_(bits) {}

    uint32_t bits() const { return bits_; }

    /** Storage size in bytes (i1 occupies one byte). */
    uint32_t bytes() const { return bits_ == 1 ? 1 : bits_ / 8; }

    std::string str() const override { return "i" + std::to_string(bits_); }

  private:
    uint32_t bits_;
};

/** IEEE float (32) or double (64). */
class FloatType : public Type
{
  public:
    explicit FloatType(uint32_t bits) : Type(Kind::Float), bits_(bits) {}

    uint32_t bits() const { return bits_; }
    uint32_t bytes() const { return bits_ / 8; }

    std::string
    str() const override
    {
        return bits_ == 32 ? "float" : "double";
    }

  private:
    uint32_t bits_;
};

/** Pointer to a pointee type ("Piece*"). */
class PointerType : public Type
{
  public:
    explicit PointerType(const Type *pointee)
        : Type(Kind::Pointer), pointee_(pointee)
    {}

    const Type *pointee() const { return pointee_; }

    std::string str() const override { return pointee_->str() + "*"; }

  private:
    const Type *pointee_;
};

/**
 * Explicit (unified) struct layout: field offsets plus total size and
 * alignment, pinned by the memory unification pass.
 */
struct StructLayout {
    std::vector<uint64_t> offsets; ///< byte offset of each field
    uint64_t size = 0;             ///< total size including tail padding
    uint32_t alignment = 1;        ///< overall alignment
};

/** Named aggregate with ordered fields. */
class StructType : public Type
{
  public:
    /** One field of the struct. */
    struct Field {
        std::string name;
        const Type *type = nullptr;
    };

    StructType(std::string name, std::vector<Field> fields)
        : Type(Kind::Struct), name_(std::move(name)), fields_(std::move(fields))
    {}

    const std::string &name() const { return name_; }
    const std::vector<Field> &fields() const { return fields_; }
    size_t numFields() const { return fields_.size(); }

    const Field &
    field(size_t idx) const
    {
        NOL_ASSERT(idx < fields_.size(), "field index %zu out of range in %s",
                   idx, name_.c_str());
        return fields_[idx];
    }

    /** Index of the field named @p name, or -1. */
    int fieldIndex(const std::string &name) const;

    /**
     * Define the fields of a struct created as a forward declaration
     * (needed for self-referential structs like linked-list nodes).
     * Only legal while the field list is still empty.
     */
    void
    setFields(std::vector<Field> fields)
    {
        NOL_ASSERT(fields_.empty(), "struct %s already has fields",
                   name_.c_str());
        fields_ = std::move(fields);
    }

    /** True once memory unification pinned this struct's layout. */
    bool hasExplicitLayout() const { return explicit_layout_ != nullptr; }

    /** The pinned layout; only valid if hasExplicitLayout(). */
    const StructLayout &
    explicitLayout() const
    {
        NOL_ASSERT(explicit_layout_ != nullptr,
                   "struct %s has no explicit layout", name_.c_str());
        return *explicit_layout_;
    }

    /** Pin the layout (memory unification, paper Sec. 3.2). */
    void
    setExplicitLayout(StructLayout layout)
    {
        explicit_layout_ = std::make_unique<StructLayout>(std::move(layout));
    }

    /** Remove the pinned layout (used by tests). */
    void clearExplicitLayout() { explicit_layout_.reset(); }

    std::string str() const override { return "%" + name_; }

  private:
    std::string name_;
    std::vector<Field> fields_;
    std::unique_ptr<StructLayout> explicit_layout_;
};

/** Fixed-length array "[N x T]". */
class ArrayType : public Type
{
  public:
    ArrayType(const Type *element, uint64_t count)
        : Type(Kind::Array), element_(element), count_(count)
    {}

    const Type *element() const { return element_; }
    uint64_t count() const { return count_; }

    std::string
    str() const override
    {
        return "[" + std::to_string(count_) + " x " + element_->str() + "]";
    }

  private:
    const Type *element_;
    uint64_t count_;
};

/** Function signature type. */
class FunctionType : public Type
{
  public:
    FunctionType(const Type *ret, std::vector<const Type *> params,
                 bool variadic)
        : Type(Kind::Function), ret_(ret), params_(std::move(params)),
          variadic_(variadic)
    {}

    const Type *returnType() const { return ret_; }
    const std::vector<const Type *> &params() const { return params_; }
    bool isVariadic() const { return variadic_; }

    std::string str() const override;

  private:
    const Type *ret_;
    std::vector<const Type *> params_;
    bool variadic_;
};

/**
 * Owner and interner of all types of one module. Scalar, pointer and
 * array types are uniqued; struct types are nominal (one per name).
 */
class TypeContext
{
  public:
    TypeContext();
    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    const VoidType *voidTy() const { return void_ty_.get(); }
    const IntType *i1() const { return i1_.get(); }
    const IntType *i8() const { return i8_.get(); }
    const IntType *i16() const { return i16_.get(); }
    const IntType *i32() const { return i32_.get(); }
    const IntType *i64() const { return i64_.get(); }
    const FloatType *f32() const { return f32_.get(); }
    const FloatType *f64() const { return f64_.get(); }

    /** Integer type of @p bits (1/8/16/32/64). */
    const IntType *intTy(uint32_t bits) const;

    /** Unique pointer type to @p pointee. */
    const PointerType *pointerTo(const Type *pointee);

    /** Unique array type. */
    const ArrayType *arrayOf(const Type *element, uint64_t count);

    /** Unique function type. */
    const FunctionType *functionTy(const Type *ret,
                                   std::vector<const Type *> params,
                                   bool variadic = false);

    /** Create a named struct; name must be fresh. */
    StructType *createStruct(const std::string &name,
                             std::vector<StructType::Field> fields);

    /** Look up a struct by name; nullptr if absent. */
    StructType *structByName(const std::string &name) const;

    /** All struct types in creation order. */
    const std::vector<StructType *> &structs() const { return struct_order_; }

  private:
    std::unique_ptr<VoidType> void_ty_;
    std::unique_ptr<IntType> i1_, i8_, i16_, i32_, i64_;
    std::unique_ptr<FloatType> f32_, f64_;
    std::map<const Type *, std::unique_ptr<PointerType>> pointers_;
    std::map<std::pair<const Type *, uint64_t>, std::unique_ptr<ArrayType>>
        arrays_;
    std::vector<std::unique_ptr<FunctionType>> fn_types_;
    std::map<std::string, std::unique_ptr<StructType>> structs_;
    std::vector<StructType *> struct_order_;
};

} // namespace nol::ir

#endif // NOL_IR_TYPE_HPP

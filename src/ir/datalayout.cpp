#include "ir/datalayout.hpp"

namespace nol::ir {

arch::ScalarKind
DataLayout::scalarKind(const Type *type) const
{
    if (type->isPointer() || type->isFunction())
        return arch::ScalarKind::Ptr;
    if (auto *it = dynamic_cast<const IntType *>(type)) {
        switch (it->bits()) {
          case 1:
          case 8: return arch::ScalarKind::I8;
          case 16: return arch::ScalarKind::I16;
          case 32: return arch::ScalarKind::I32;
          case 64: return arch::ScalarKind::I64;
        }
    }
    if (auto *ft = dynamic_cast<const FloatType *>(type))
        return ft->bits() == 32 ? arch::ScalarKind::F32 : arch::ScalarKind::F64;
    panic("type %s has no scalar kind", type->str().c_str());
}

uint64_t
DataLayout::sizeOf(const Type *type) const
{
    switch (type->kind()) {
      case Type::Kind::Void:
        return 0;
      case Type::Kind::Int:
      case Type::Kind::Float:
      case Type::Kind::Pointer:
      case Type::Kind::Function:
        return spec_.sizeOf(scalarKind(type));
      case Type::Kind::Array: {
        auto *arr = static_cast<const ArrayType *>(type);
        return sizeOf(arr->element()) * arr->count();
      }
      case Type::Kind::Struct: {
        auto *st = static_cast<const StructType *>(type);
        if (st->hasExplicitLayout())
            return st->explicitLayout().size;
        return naturalLayout(st).size;
      }
    }
    panic("unknown type kind");
}

uint32_t
DataLayout::alignOf(const Type *type) const
{
    switch (type->kind()) {
      case Type::Kind::Void:
        return 1;
      case Type::Kind::Int:
      case Type::Kind::Float:
      case Type::Kind::Pointer:
      case Type::Kind::Function:
        return spec_.alignOf(scalarKind(type));
      case Type::Kind::Array:
        return alignOf(static_cast<const ArrayType *>(type)->element());
      case Type::Kind::Struct: {
        auto *st = static_cast<const StructType *>(type);
        if (st->hasExplicitLayout())
            return st->explicitLayout().alignment;
        uint32_t align = 1;
        for (const auto &field : st->fields())
            align = std::max(align, alignOf(field.type));
        return align;
      }
    }
    panic("unknown type kind");
}

uint64_t
DataLayout::fieldOffset(const StructType *st, size_t idx) const
{
    NOL_ASSERT(idx < st->numFields(), "field index %zu out of range", idx);
    if (st->hasExplicitLayout())
        return st->explicitLayout().offsets[idx];
    return naturalLayout(st).offsets[idx];
}

StructLayout
DataLayout::naturalLayout(const StructType *st) const
{
    StructLayout layout;
    uint64_t offset = 0;
    uint32_t max_align = 1;
    for (const auto &field : st->fields()) {
        // Explicit pins on *nested* structs still apply: unification
        // pins every struct, so nesting stays consistent.
        uint32_t align = alignOf(field.type);
        max_align = std::max(max_align, align);
        offset = alignUp(offset, align);
        layout.offsets.push_back(offset);
        offset += sizeOf(field.type);
    }
    layout.size = alignUp(offset, max_align);
    if (layout.size == 0)
        layout.size = 1; // empty structs still occupy storage
    layout.alignment = max_align;
    return layout;
}

} // namespace nol::ir

/**
 * @file
 * Small CFG utilities shared by the front end and the compiler passes.
 */
#ifndef NOL_IR_CFGUTILS_HPP
#define NOL_IR_CFGUTILS_HPP

#include "ir/function.hpp"

namespace nol::ir {

/**
 * Delete every block not reachable from the entry (dead-code landing
 * pads emitted after break/continue/return). Loop metadata is repaired:
 * unreachable blocks are dropped from block lists, and loops whose
 * header died are removed entirely.
 */
void removeUnreachableBlocks(Function &fn);

} // namespace nol::ir

#endif // NOL_IR_CFGUTILS_HPP

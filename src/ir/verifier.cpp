#include "ir/verifier.hpp"

#include <set>
#include <sstream>

#include "ir/printer.hpp"

namespace nol::ir {

namespace {

/** Per-function verification state. */
class FunctionVerifier
{
  public:
    FunctionVerifier(const Function &fn, std::vector<std::string> &problems)
        : fn_(fn), problems_(problems)
    {}

    void
    run()
    {
        if (!fn_.hasBody())
            return;

        // Collect everything defined in this function.
        for (const auto &arg : fn_.args())
            defined_.insert(arg.get());
        for (const auto &bb : fn_.blocks()) {
            blocks_.insert(bb.get());
            for (const auto &inst : bb->insts())
                defined_.insert(inst.get());
        }

        for (const auto &bb : fn_.blocks())
            checkBlock(*bb);

        for (const LoopMeta &loop : fn_.loops())
            checkLoop(loop);
    }

  private:
    void
    problem(const std::string &what)
    {
        problems_.push_back("in @" + fn_.name() + ": " + what);
    }

    void
    checkBlock(const BasicBlock &bb)
    {
        if (bb.empty()) {
            problem("empty block " + bb.name());
            return;
        }
        if (bb.terminator() == nullptr)
            problem("block " + bb.name() + " lacks a terminator");

        for (size_t i = 0; i < bb.size(); ++i) {
            const Instruction *inst = bb.inst(i);
            if (inst->isTerminator() && i + 1 != bb.size())
                problem("terminator mid-block in " + bb.name());
            checkInst(*inst);
        }
    }

    void
    checkInst(const Instruction &inst)
    {
        for (const Value *op : inst.operands()) {
            bool local = op->valueKind() == Value::Kind::Argument ||
                         op->valueKind() == Value::Kind::Instruction;
            if (local && defined_.count(op) == 0) {
                problem("operand of '" + printInst(inst) +
                        "' defined in another function");
            }
        }
        for (const BasicBlock *succ : inst.successors()) {
            if (blocks_.count(succ) == 0)
                problem("successor " + succ->name() + " of '" +
                        printInst(inst) + "' not in function");
        }

        switch (inst.op()) {
          case Opcode::Load:
            if (!inst.operand(0)->type()->isPointer())
                problem("load from non-pointer: " + printInst(inst));
            break;
          case Opcode::Store:
            if (!inst.operand(1)->type()->isPointer())
                problem("store to non-pointer: " + printInst(inst));
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::SDiv:
          case Opcode::UDiv:
          case Opcode::SRem:
          case Opcode::URem:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::LShr:
          case Opcode::AShr:
            if (!inst.operand(0)->type()->isInt() ||
                !inst.operand(1)->type()->isInt()) {
                problem("integer op on non-int: " + printInst(inst));
            }
            break;
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
            if (!inst.operand(0)->type()->isFloat() ||
                !inst.operand(1)->type()->isFloat()) {
                problem("float op on non-float: " + printInst(inst));
            }
            break;
          case Opcode::Call: {
            if (inst.callee() == nullptr) {
                problem("call with no callee: " + printInst(inst));
                break;
            }
            const FunctionType *ft = inst.callee()->functionType();
            if (inst.numOperands() < ft->params().size() ||
                (inst.numOperands() != ft->params().size() &&
                 !ft->isVariadic())) {
                problem("bad argument count calling @" +
                        inst.callee()->name());
            }
            break;
          }
          case Opcode::CallIndirect:
            if (!inst.operand(0)->type()->isPointer())
                problem("indirect call through non-pointer: " +
                        printInst(inst));
            if (inst.calleeType() == nullptr)
                problem("indirect call without signature: " +
                        printInst(inst));
            break;
          case Opcode::CondBr:
            if (!inst.operand(0)->type()->isInt())
                problem("condbr on non-int condition");
            if (inst.successors().size() != 2)
                problem("condbr needs exactly 2 successors");
            break;
          case Opcode::Br:
            if (inst.successors().size() != 1)
                problem("br needs exactly 1 successor");
            break;
          case Opcode::Switch:
            if (inst.successors().size() != inst.caseValues().size() + 1)
                problem("switch successor/case count mismatch");
            break;
          case Opcode::Ret: {
            const Type *ret = fn_.functionType()->returnType();
            if (ret->isVoid() && inst.numOperands() != 0)
                problem("ret with value in void function");
            if (!ret->isVoid() && inst.numOperands() != 1)
                problem("ret without value in non-void function");
            break;
          }
          case Opcode::FieldAddr:
            if (inst.structType() == nullptr ||
                inst.fieldIndex() >= inst.structType()->numFields()) {
                problem("bad fieldaddr: " + printInst(inst));
            }
            break;
          default:
            break;
        }
    }

    void
    checkLoop(const LoopMeta &loop)
    {
        if (loop.header == nullptr || blocks_.count(loop.header) == 0) {
            problem("loop " + loop.name + " header not in function");
            return;
        }
        if (!loop.contains(loop.header))
            problem("loop " + loop.name + " does not contain its header");
        for (const BasicBlock *bb : loop.blocks) {
            if (blocks_.count(bb) == 0)
                problem("loop " + loop.name + " block not in function");
        }
        if (loop.exit != nullptr && loop.contains(loop.exit))
            problem("loop " + loop.name + " exit inside loop");
    }

    const Function &fn_;
    std::vector<std::string> &problems_;
    std::set<const Value *> defined_;
    std::set<const BasicBlock *> blocks_;
};

} // namespace

std::vector<std::string>
verifyModule(const Module &module)
{
    std::vector<std::string> problems;
    std::set<std::string> fn_names;
    for (const auto &fn : module.functions()) {
        if (!fn_names.insert(fn->name()).second)
            problems.push_back("duplicate function @" + fn->name());
        FunctionVerifier(*fn, problems).run();
    }
    std::set<std::string> gv_names;
    for (const auto &gv : module.globals()) {
        if (!gv_names.insert(gv->name()).second)
            problems.push_back("duplicate global @" + gv->name());
    }
    return problems;
}

void
verifyModuleOrDie(const Module &module)
{
    auto problems = verifyModule(module);
    if (!problems.empty()) {
        std::ostringstream os;
        for (size_t i = 0; i < std::min<size_t>(problems.size(), 10); ++i)
            os << problems[i] << "\n";
        panic("module %s failed verification (%zu problems):\n%s",
              module.name().c_str(), problems.size(), os.str().c_str());
    }
}

} // namespace nol::ir

/**
 * @file
 * Per-architecture data layout computation. Given an ArchSpec, the
 * DataLayout answers size/alignment/field-offset questions for every IR
 * type. Structs with an explicit (unified) layout short-circuit to that
 * layout, which is how the memory unification pass forces the mobile
 * layout onto the server binary (paper Sec. 3.2, Fig. 4).
 */
#ifndef NOL_IR_DATALAYOUT_HPP
#define NOL_IR_DATALAYOUT_HPP

#include "arch/archspec.hpp"
#include "ir/type.hpp"

namespace nol::ir {

/** Layout oracle for one architecture. Cheap to construct and copy. */
class DataLayout
{
  public:
    explicit DataLayout(arch::ArchSpec spec) : spec_(std::move(spec)) {}

    const arch::ArchSpec &spec() const { return spec_; }

    /** Storage size of @p type in bytes. */
    uint64_t sizeOf(const Type *type) const;

    /** ABI alignment of @p type in bytes. */
    uint32_t alignOf(const Type *type) const;

    /** Byte offset of field @p idx of @p st on this architecture. */
    uint64_t fieldOffset(const StructType *st, size_t idx) const;

    /**
     * Compute the natural (ABI) layout of @p st on this architecture,
     * ignoring any explicit layout pin. Used by the memory unifier to
     * derive the mobile layout before pinning it.
     */
    StructLayout naturalLayout(const StructType *st) const;

    /** Scalar storage class of a scalar @p type (int/float/pointer). */
    arch::ScalarKind scalarKind(const Type *type) const;

  private:
    arch::ArchSpec spec_;
};

/** Round @p offset up to a multiple of @p align. */
constexpr uint64_t
alignUp(uint64_t offset, uint64_t align)
{
    return (offset + align - 1) / align * align;
}

} // namespace nol::ir

#endif // NOL_IR_DATALAYOUT_HPP

/**
 * @file
 * Function: arguments plus a list of basic blocks, with loop metadata
 * attached by the front end (the hot function/LOOP profiler and the
 * target selector treat loops as first-class offload candidates).
 */
#ifndef NOL_IR_FUNCTION_HPP
#define NOL_IR_FUNCTION_HPP

#include <memory>
#include <string>
#include <vector>

#include "ir/basicblock.hpp"
#include "ir/value.hpp"

namespace nol::ir {

class Module;

/**
 * Structured-loop metadata recorded during lowering. Front-end loops
 * are single-entry (preheader → header) and single-exit, which is what
 * makes them outlineable offload targets.
 */
struct LoopMeta {
    std::string name;           ///< e.g. "getAITurn_for.cond1"
    BasicBlock *preheader = nullptr; ///< unique predecessor outside the loop
    BasicBlock *header = nullptr;    ///< loop entry block
    std::vector<BasicBlock *> blocks; ///< all blocks in the loop (incl. header)
    BasicBlock *exit = nullptr;      ///< unique block the loop exits to

    /** True if @p bb is one of the loop's blocks. */
    bool
    contains(const BasicBlock *bb) const
    {
        for (const auto *b : blocks) {
            if (b == bb)
                return true;
        }
        return false;
    }
};

/** A function definition or external declaration. */
class Function : public Value
{
  public:
    Function(const FunctionType *fn_type, const PointerType *ptr_type,
             std::string name, Module *parent, bool is_external)
        : Value(Kind::Function, ptr_type, std::move(name)),
          fn_type_(fn_type), parent_(parent), external_(is_external)
    {}

    Function(const Function &) = delete;
    Function &operator=(const Function &) = delete;

    const FunctionType *functionType() const { return fn_type_; }
    Module *parent() const { return parent_; }

    /** True for declarations with no body (libc builtins, externs). */
    bool isExternal() const { return external_; }

    // --- Arguments -------------------------------------------------------
    const std::vector<std::unique_ptr<Argument>> &args() const
    {
        return args_;
    }
    Argument *arg(size_t idx) const { return args_[idx].get(); }
    size_t numArgs() const { return args_.size(); }

    /** Create the argument list from the function type. */
    void materializeArgs(const std::vector<std::string> &names = {});

    // --- Blocks -----------------------------------------------------------
    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    bool hasBody() const { return !blocks_.empty(); }
    BasicBlock *entry() const
    {
        NOL_ASSERT(!blocks_.empty(), "function %s has no body",
                   name().c_str());
        return blocks_.front().get();
    }

    /** Create and append a new block. */
    BasicBlock *createBlock(const std::string &name);

    /** Append an externally built block (used by outlining). */
    BasicBlock *adoptBlock(std::unique_ptr<BasicBlock> bb);

    /** Detach @p bb (by pointer) without destroying it. */
    std::unique_ptr<BasicBlock> removeBlock(BasicBlock *bb);

    /** Index of @p bb in the block list, or -1. */
    int blockIndex(const BasicBlock *bb) const;

    /**
     * Drop the body, turning the definition into an external
     * declaration — the partitioner's "unused function removal" keeps
     * declarations so canonical function addresses stay aligned across
     * the mobile and server binaries.
     */
    void
    stripBody()
    {
        blocks_.clear();
        loops_.clear();
        external_ = true;
    }

    // --- Loop metadata ----------------------------------------------------
    const std::vector<LoopMeta> &loops() const { return loops_; }
    std::vector<LoopMeta> &loops() { return loops_; }
    void addLoop(LoopMeta meta) { loops_.push_back(std::move(meta)); }

    /** Loop whose name is @p name, or nullptr. */
    const LoopMeta *loopByName(const std::string &name) const;

    // --- Misc -------------------------------------------------------------
    /** Total instruction count over all blocks. */
    size_t instructionCount() const;

    /** Fresh value name unique within this function ("t42"). */
    std::string freshName(const std::string &hint = "t");

  private:
    const FunctionType *fn_type_;
    Module *parent_;
    bool external_;
    std::vector<std::unique_ptr<Argument>> args_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::vector<LoopMeta> loops_;
    unsigned next_name_ = 0;
};

} // namespace nol::ir

#endif // NOL_IR_FUNCTION_HPP

#include "ir/printer.hpp"

#include <map>
#include <sstream>

#include "support/strings.hpp"

namespace nol::ir {

namespace {

/** Assigns stable %N ids to unnamed values within one function. */
class NameMap
{
  public:
    std::string
    of(const Value *v)
    {
        if (!v->name().empty())
            return "%" + v->name();
        auto it = ids_.find(v);
        if (it == ids_.end())
            it = ids_.emplace(v, next_++).first;
        return "%" + std::to_string(it->second);
    }

  private:
    std::map<const Value *, unsigned> ids_;
    unsigned next_ = 0;
};

std::string
operandStr(const Value *v, NameMap &names)
{
    switch (v->valueKind()) {
      case Value::Kind::ConstInt: {
        const auto *ci = static_cast<const ConstInt *>(v);
        return v->type()->str() + " " + std::to_string(ci->value());
      }
      case Value::Kind::ConstFloat: {
        const auto *cf = static_cast<const ConstFloat *>(v);
        return v->type()->str() + " " + fixed(cf->value(), 6);
      }
      case Value::Kind::ConstNull:
        return v->type()->str() + " null";
      case Value::Kind::Global:
        return v->type()->str() + " @" + v->name();
      case Value::Kind::Function:
        return "@" + v->name();
      case Value::Kind::Argument:
      case Value::Kind::Instruction:
        return v->type()->str() + " " + names.of(v);
    }
    return "?";
}

std::string
printInstWith(const Instruction &inst, NameMap &names)
{
    std::ostringstream os;
    if (!inst.type()->isVoid())
        os << names.of(&inst) << " = ";
    os << opcodeName(inst.op());

    if (inst.op() == Opcode::Alloca) {
        os << " " << inst.accessType()->str();
    } else if (inst.op() == Opcode::FieldAddr) {
        os << " " << operandStr(inst.operand(0), names) << ", field "
           << inst.fieldIndex() << " (" << inst.structType()->name() << "."
           << inst.structType()->field(inst.fieldIndex()).name << ")";
    } else if (inst.op() == Opcode::Call) {
        os << " @" << inst.callee()->name() << "(";
        for (size_t i = 0; i < inst.numOperands(); ++i) {
            if (i != 0)
                os << ", ";
            os << operandStr(inst.operand(i), names);
        }
        os << ")";
    } else if (inst.op() == Opcode::CallIndirect) {
        os << " " << operandStr(inst.operand(0), names) << "(";
        for (size_t i = 1; i < inst.numOperands(); ++i) {
            if (i != 1)
                os << ", ";
            os << operandStr(inst.operand(i), names);
        }
        os << ")";
    } else if (inst.op() == Opcode::MachineAsm) {
        os << " \"" << inst.asmText() << "\"";
    } else {
        for (size_t i = 0; i < inst.numOperands(); ++i)
            os << (i == 0 ? " " : ", ") << operandStr(inst.operand(i), names);
    }

    // Cast result types.
    switch (inst.op()) {
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::FPToSI:
      case Opcode::SIToFP:
      case Opcode::FPTrunc:
      case Opcode::FPExt:
      case Opcode::Bitcast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        os << " to " << inst.type()->str();
        break;
      default:
        break;
    }

    if (inst.op() == Opcode::Switch) {
        os << " [";
        const auto &cases = inst.caseValues();
        for (size_t i = 0; i < cases.size(); ++i) {
            if (i != 0)
                os << ", ";
            os << cases[i] << " -> " << inst.successor(i + 1)->name();
        }
        os << "], default " << inst.successor(0)->name();
    } else if (!inst.successors().empty()) {
        for (size_t i = 0; i < inst.successors().size(); ++i)
            os << (i == 0 && inst.numOperands() == 0 ? " " : ", ")
               << inst.successor(i)->name();
    }
    return os.str();
}

} // namespace

std::string
printInst(const Instruction &inst)
{
    NameMap names;
    return printInstWith(inst, names);
}

std::string
printFunction(const Function &fn)
{
    std::ostringstream os;
    NameMap names;
    os << (fn.isExternal() ? "declare " : "define ")
       << fn.functionType()->returnType()->str() << " @" << fn.name() << "(";
    for (size_t i = 0; i < fn.numArgs(); ++i) {
        if (i != 0)
            os << ", ";
        os << fn.arg(i)->type()->str() << " " << names.of(fn.arg(i));
    }
    if (fn.functionType()->isVariadic())
        os << (fn.numArgs() > 0 ? ", ..." : "...");
    os << ")";
    if (fn.isExternal()) {
        os << "\n";
        return os.str();
    }
    os << " {\n";
    for (const auto &bb : fn.blocks()) {
        os << bb->name() << ":\n";
        for (const auto &inst : bb->insts())
            os << "    " << printInstWith(*inst, names) << "\n";
    }
    os << "}\n";
    for (const auto &loop : fn.loops()) {
        os << "; loop " << loop.name << " header=" << loop.header->name()
           << " blocks=" << loop.blocks.size() << "\n";
    }
    return os.str();
}

std::string
printModule(const Module &module)
{
    std::ostringstream os;
    os << "; module " << module.name() << "\n";
    for (const StructType *st : module.types().structs()) {
        os << "%" << st->name() << " = { ";
        for (size_t i = 0; i < st->numFields(); ++i) {
            if (i != 0)
                os << ", ";
            os << st->field(i).type->str() << " " << st->field(i).name;
        }
        os << " }";
        if (st->hasExplicitLayout()) {
            os << "  ; unified layout: size " << st->explicitLayout().size
               << ", offsets [";
            const auto &offs = st->explicitLayout().offsets;
            for (size_t i = 0; i < offs.size(); ++i)
                os << (i == 0 ? "" : ", ") << offs[i];
            os << "]";
        }
        os << "\n";
    }
    for (const auto &gv : module.globals()) {
        os << "@" << gv->name() << " = "
           << (gv->isConst() ? "const " : "global ")
           << gv->valueType()->str();
        if (gv->inUva())
            os << "  ; uva";
        os << "\n";
    }
    os << "\n";
    for (const auto &fn : module.functions())
        os << printFunction(*fn) << "\n";
    return os.str();
}

} // namespace nol::ir

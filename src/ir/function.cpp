#include "ir/function.hpp"

namespace nol::ir {

void
Function::materializeArgs(const std::vector<std::string> &names)
{
    NOL_ASSERT(args_.empty(), "arguments of %s already materialized",
               name().c_str());
    const auto &params = fn_type_->params();
    for (size_t i = 0; i < params.size(); ++i) {
        std::string arg_name =
            i < names.size() ? names[i] : "arg" + std::to_string(i);
        args_.push_back(std::make_unique<Argument>(
            params[i], std::move(arg_name), this, static_cast<unsigned>(i)));
    }
}

BasicBlock *
Function::createBlock(const std::string &name)
{
    blocks_.push_back(std::make_unique<BasicBlock>(name, this));
    return blocks_.back().get();
}

BasicBlock *
Function::adoptBlock(std::unique_ptr<BasicBlock> bb)
{
    bb->setParent(this);
    blocks_.push_back(std::move(bb));
    return blocks_.back().get();
}

std::unique_ptr<BasicBlock>
Function::removeBlock(BasicBlock *bb)
{
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].get() == bb) {
            std::unique_ptr<BasicBlock> out = std::move(blocks_[i]);
            blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(i));
            out->setParent(nullptr);
            return out;
        }
    }
    panic("block %s not found in function %s", bb->name().c_str(),
          name().c_str());
}

int
Function::blockIndex(const BasicBlock *bb) const
{
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].get() == bb)
            return static_cast<int>(i);
    }
    return -1;
}

const LoopMeta *
Function::loopByName(const std::string &name) const
{
    for (const auto &loop : loops_) {
        if (loop.name == name)
            return &loop;
    }
    return nullptr;
}

size_t
Function::instructionCount() const
{
    size_t count = 0;
    for (const auto &bb : blocks_)
        count += bb->size();
    return count;
}

std::string
Function::freshName(const std::string &hint)
{
    return hint + std::to_string(next_name_++);
}

} // namespace nol::ir

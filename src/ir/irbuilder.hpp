/**
 * @file
 * Convenience builder for emitting IR. Tracks an insertion point
 * (block + position) and provides one factory method per opcode with
 * type checking at construction time.
 */
#ifndef NOL_IR_IRBUILDER_HPP
#define NOL_IR_IRBUILDER_HPP

#include "ir/module.hpp"

namespace nol::ir {

/** Stateful instruction factory appending at an insertion point. */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module) : module_(module) {}

    Module &module() const { return module_; }
    TypeContext &types() const { return module_.types(); }

    /** Append new instructions at the end of @p bb. */
    void setInsertPoint(BasicBlock *bb) { bb_ = bb; insert_idx_ = -1; }

    /** Insert before position @p idx of @p bb (subsequent inserts shift). */
    void
    setInsertPoint(BasicBlock *bb, size_t idx)
    {
        bb_ = bb;
        insert_idx_ = static_cast<int>(idx);
    }

    BasicBlock *insertBlock() const { return bb_; }

    // --- Memory -----------------------------------------------------------
    Instruction *alloca_(const Type *type, const std::string &name = "");
    Instruction *load(Value *ptr, const std::string &name = "");
    Instruction *store(Value *value, Value *ptr);

    // --- Arithmetic ---------------------------------------------------------
    Instruction *binary(Opcode op, Value *lhs, Value *rhs,
                        const std::string &name = "");
    Instruction *cmp(Opcode op, Value *lhs, Value *rhs,
                     const std::string &name = "");
    Instruction *cast(Opcode op, Value *value, const Type *to,
                      const std::string &name = "");

    // --- Addressing ----------------------------------------------------------
    /** &base->field (base must be pointer-to-struct). */
    Instruction *fieldAddr(Value *base, unsigned field_idx,
                           const std::string &name = "");

    /** base + index*sizeof(elem) where base is T* (or decayed [N x T]*). */
    Instruction *indexAddr(Value *base, Value *index,
                           const std::string &name = "");

    // --- Calls -----------------------------------------------------------------
    Instruction *call(Function *callee, std::vector<Value *> args,
                      const std::string &name = "");
    Instruction *callIndirect(Value *fn_ptr, const FunctionType *fn_type,
                              std::vector<Value *> args,
                              const std::string &name = "");

    // --- Misc ---------------------------------------------------------------
    Instruction *select(Value *cond, Value *if_true, Value *if_false,
                        const std::string &name = "");

    // --- Terminators -----------------------------------------------------------
    Instruction *br(BasicBlock *dest);
    Instruction *condBr(Value *cond, BasicBlock *if_true,
                        BasicBlock *if_false);
    Instruction *switch_(Value *value, BasicBlock *default_dest);
    Instruction *ret(Value *value = nullptr);
    Instruction *unreachable();

    /** Opaque machine-specific instruction (inline assembly stand-in). */
    Instruction *machineAsm(const std::string &text);

  private:
    Instruction *emit(std::unique_ptr<Instruction> inst);

    Module &module_;
    BasicBlock *bb_ = nullptr;
    int insert_idx_ = -1;
};

} // namespace nol::ir

#endif // NOL_IR_IRBUILDER_HPP

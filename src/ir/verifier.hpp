/**
 * @file
 * Structural and type checks on IR modules. The verifier runs after
 * the front end and after every compiler transformation; a verification
 * failure is always an internal bug (panic), never a user error.
 */
#ifndef NOL_IR_VERIFIER_HPP
#define NOL_IR_VERIFIER_HPP

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace nol::ir {

/** Check @p module; returns the list of problems (empty = valid). */
std::vector<std::string> verifyModule(const Module &module);

/** Check @p module and panic with the first problem if invalid. */
void verifyModuleOrDie(const Module &module);

} // namespace nol::ir

#endif // NOL_IR_VERIFIER_HPP

#include "ir/outline.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ir/irbuilder.hpp"
#include "ir/loopinfo.hpp"

namespace nol::ir {

namespace {

/** True if @p v is an SSA value (argument or instruction result). */
bool
isLocalValue(const Value *v)
{
    return v->valueKind() == Value::Kind::Argument ||
           v->valueKind() == Value::Kind::Instruction;
}

/** Block that defines @p v, or nullptr for arguments. */
const BasicBlock *
definingBlock(const Value *v)
{
    if (v->valueKind() == Value::Kind::Instruction)
        return static_cast<const Instruction *>(v)->parent();
    return nullptr;
}

struct LoopDataflow {
    std::vector<Value *> liveIns;
    std::vector<Value *> liveOuts;
};

LoopDataflow
analyzeDataflow(Function &fn, const LoopMeta &loop)
{
    std::set<const BasicBlock *> in_loop(loop.blocks.begin(),
                                         loop.blocks.end());
    LoopDataflow flow;
    std::set<Value *> live_in_seen;
    std::set<Value *> live_out_seen;

    for (const auto &bb : fn.blocks()) {
        bool inside = in_loop.count(bb.get()) != 0;
        for (const auto &inst : bb->insts()) {
            for (Value *op : inst->operands()) {
                if (!isLocalValue(op))
                    continue;
                const BasicBlock *def_bb = definingBlock(op);
                bool def_inside = def_bb != nullptr && in_loop.count(def_bb);
                if (inside && !def_inside && live_in_seen.insert(op).second)
                    flow.liveIns.push_back(op);
                if (!inside && def_inside && live_out_seen.insert(op).second)
                    flow.liveOuts.push_back(op);
            }
        }
    }
    return flow;
}

} // namespace

OutlineResult
canOutlineLoop(Function &fn, const LoopMeta &loop)
{
    OutlineResult res;
    if (loop.preheader == nullptr) {
        res.reason = "no unique preheader";
        return res;
    }
    if (loop.exit == nullptr) {
        res.reason = "no unique exit block";
        return res;
    }
    if (loop.contains(loop.exit)) {
        res.reason = "exit block inside loop";
        return res;
    }

    // The preheader must reach the header directly.
    bool edge_found = false;
    for (BasicBlock *succ : loop.preheader->successors())
        edge_found |= succ == loop.header;
    if (!edge_found) {
        res.reason = "preheader does not branch to header";
        return res;
    }

    // The header's only outside predecessor must be the preheader.
    auto preds = predecessors(fn);
    for (BasicBlock *pred : preds[loop.header]) {
        if (!loop.contains(pred) && pred != loop.preheader) {
            res.reason = "header has outside predecessor besides preheader";
            return res;
        }
    }

    // Loop exits may only target the unique exit block.
    for (BasicBlock *bb : loop.blocks) {
        for (BasicBlock *succ : bb->successors()) {
            if (!loop.contains(succ) && succ != loop.exit) {
                res.reason = "loop exits to multiple blocks";
                return res;
            }
        }
    }

    LoopDataflow flow = analyzeDataflow(fn, loop);
    if (!flow.liveOuts.empty()) {
        res.reason = "SSA value live out of loop: " +
                     flow.liveOuts.front()->name();
        return res;
    }

    res.ok = true;
    return res;
}

Function *
outlineLoop(Module &module, Function &fn, const std::string &loop_name,
            const std::string &new_name)
{
    const LoopMeta *loop_ptr = fn.loopByName(loop_name);
    NOL_ASSERT(loop_ptr != nullptr, "no loop %s in @%s", loop_name.c_str(),
               fn.name().c_str());
    LoopMeta loop = *loop_ptr; // copy: we mutate fn.loops() below

    OutlineResult check = canOutlineLoop(fn, loop);
    NOL_ASSERT(check.ok, "loop %s not outlineable: %s", loop_name.c_str(),
               check.reason.c_str());

    LoopDataflow flow = analyzeDataflow(fn, loop);

    // Build the new function: void new_name(live-in types...).
    std::vector<const Type *> param_types;
    std::vector<std::string> param_names;
    for (Value *v : flow.liveIns) {
        param_types.push_back(v->type());
        param_names.push_back(v->name().empty() ? "in" : v->name());
    }
    const FunctionType *fn_type =
        module.types().functionTy(module.types().voidTy(), param_types);
    Function *out = module.createFunction(new_name, fn_type);
    out->materializeArgs(param_names);

    // Map live-ins to the new arguments.
    std::map<Value *, Value *> value_map;
    for (size_t i = 0; i < flow.liveIns.size(); ++i)
        value_map[flow.liveIns[i]] = out->arg(i);

    // Move the loop blocks (header first, then original order).
    std::set<BasicBlock *> moved(loop.blocks.begin(), loop.blocks.end());
    std::vector<BasicBlock *> ordered;
    ordered.push_back(loop.header);
    for (const auto &bb : fn.blocks()) {
        if (moved.count(bb.get()) != 0 && bb.get() != loop.header)
            ordered.push_back(bb.get());
    }
    for (BasicBlock *bb : ordered)
        out->adoptBlock(fn.removeBlock(bb));

    // Return block replacing the old exit target.
    BasicBlock *ret_bb = out->createBlock("loop.ret");
    {
        IRBuilder b(module);
        b.setInsertPoint(ret_bb);
        b.ret();
    }

    // Rewrite moved instructions: live-in operands and exit edges.
    for (BasicBlock *bb : ordered) {
        for (const auto &inst : bb->insts()) {
            for (size_t i = 0; i < inst->numOperands(); ++i) {
                auto it = value_map.find(inst->operand(i));
                if (it != value_map.end())
                    inst->setOperand(i, it->second);
            }
            for (size_t i = 0; i < inst->successors().size(); ++i) {
                if (inst->successor(i) == loop.exit)
                    inst->setSuccessor(i, ret_bb);
            }
        }
    }

    // In the original function: call the new function, then fall
    // through to the old exit. Reuse the preheader's header edge.
    BasicBlock *call_bb = fn.createBlock(new_name + ".call");
    {
        IRBuilder b(module);
        b.setInsertPoint(call_bb);
        b.call(out, flow.liveIns);
        b.br(loop.exit);
    }
    Instruction *pre_term = loop.preheader->terminator();
    NOL_ASSERT(pre_term != nullptr, "preheader lacks terminator");
    for (size_t i = 0; i < pre_term->successors().size(); ++i) {
        if (pre_term->successor(i) == loop.header)
            pre_term->setSuccessor(i, call_bb);
    }

    // Move inner-loop metadata into the new function; repair outer
    // metas that referenced the moved blocks.
    std::vector<LoopMeta> kept;
    for (LoopMeta &meta : fn.loops()) {
        if (meta.name == loop.name)
            continue; // the outlined loop itself: dropped
        bool all_inside = !meta.blocks.empty();
        bool any_inside = false;
        for (BasicBlock *bb : meta.blocks) {
            bool inside = moved.count(bb) != 0;
            all_inside &= inside;
            any_inside |= inside;
        }
        if (all_inside) {
            out->addLoop(meta); // inner loop: follows its blocks
        } else if (any_inside) {
            // Outer loop that contained the outlined one: replace the
            // moved blocks with the call block.
            LoopMeta repaired = meta;
            repaired.blocks.erase(
                std::remove_if(repaired.blocks.begin(), repaired.blocks.end(),
                               [&](BasicBlock *bb) { return moved.count(bb); }),
                repaired.blocks.end());
            repaired.blocks.push_back(call_bb);
            kept.push_back(std::move(repaired));
        } else {
            kept.push_back(meta);
        }
    }
    fn.loops() = std::move(kept);

    return out;
}

} // namespace nol::ir

/**
 * @file
 * Module: the unit of compilation. Owns globals, functions and a
 * constant arena; shares a TypeContext with clones of itself (the
 * partitioner produces one mobile clone and one server clone of the
 * unified module, mirroring the paper's Fig. 1).
 */
#ifndef NOL_IR_MODULE_HPP
#define NOL_IR_MODULE_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/type.hpp"
#include "ir/value.hpp"

namespace nol::ir {

class Module;

/** Old-value → new-value map produced by Module::clone(). */
struct CloneMap {
    std::map<const Value *, Value *> values;
    std::map<const BasicBlock *, BasicBlock *> blocks;

    /** Mapped function for @p fn (asserts presence). */
    Function *fn(const Function *fn) const;

    /** Mapped global for @p gv (asserts presence). */
    GlobalVariable *global(const GlobalVariable *gv) const;
};

/** A whole program at IR level. */
class Module
{
  public:
    explicit Module(std::string name);
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    TypeContext &types() { return *types_; }
    const TypeContext &types() const { return *types_; }

    /** Shared type context handle (clones share it). */
    std::shared_ptr<TypeContext> typesHandle() const { return types_; }

    // --- Functions ---------------------------------------------------------
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    /** Create a function definition (or external decl if @p external). */
    Function *createFunction(const std::string &name,
                             const FunctionType *type, bool external = false);

    /** Find a function by name; nullptr if absent. */
    Function *functionByName(const std::string &name) const;

    /** Remove (destroy) the function @p fn. */
    void removeFunction(Function *fn);

    // --- Globals -----------------------------------------------------------
    const std::vector<std::unique_ptr<GlobalVariable>> &globals() const
    {
        return globals_;
    }

    /** Create a global variable holding @p value_type. */
    GlobalVariable *createGlobal(const std::string &name,
                                 const Type *value_type, Initializer init,
                                 bool is_const = false);

    /** Find a global by name; nullptr if absent. */
    GlobalVariable *globalByName(const std::string &name) const;

    // --- Constants ----------------------------------------------------------
    /** Integer constant of @p type. */
    ConstInt *constInt(const IntType *type, int64_t value);

    /** i32 constant. */
    ConstInt *constI32(int64_t value);

    /** i64 constant. */
    ConstInt *constI64(int64_t value);

    /** i1 constant. */
    ConstInt *constBool(bool value);

    /** Floating constant of @p type. */
    ConstFloat *constFloat(const FloatType *type, double value);

    /** Null pointer of @p type. */
    ConstNull *constNull(const PointerType *type);

    // --- Unified-ABI metadata (memory unification, paper Sec. 3.2) -----
    /**
     * The ABI every memory access must follow once the memory unifier
     * ran: the *mobile* pointer size, endianness and alignment rules.
     * Null before unification (each machine uses its native ABI).
     */
    const arch::ArchSpec *unifiedAbi() const { return unified_abi_.get(); }

    /** Pin the unified ABI (normally the mobile device's ArchSpec). */
    void setUnifiedAbi(arch::ArchSpec spec)
    {
        unified_abi_ = std::make_shared<arch::ArchSpec>(std::move(spec));
    }

    /**
     * Deep copy of this module (same TypeContext). @p map receives the
     * old→new correspondence for functions, globals, blocks and
     * instruction values.
     */
    std::unique_ptr<Module> clone(const std::string &new_name,
                                  CloneMap &map) const;

  private:
    std::string name_;
    std::shared_ptr<TypeContext> types_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<std::unique_ptr<GlobalVariable>> globals_;
    std::vector<std::unique_ptr<Value>> constants_;
    std::shared_ptr<arch::ArchSpec> unified_abi_;
};

} // namespace nol::ir

#endif // NOL_IR_MODULE_HPP

#include "ir/loopinfo.hpp"

#include <algorithm>

namespace nol::ir {

std::map<const BasicBlock *, std::vector<BasicBlock *>>
predecessors(const Function &fn)
{
    std::map<const BasicBlock *, std::vector<BasicBlock *>> preds;
    for (const auto &bb : fn.blocks()) {
        preds[bb.get()]; // ensure presence
        for (BasicBlock *succ : bb->successors())
            preds[succ].push_back(bb.get());
    }
    return preds;
}

namespace {

void
postOrder(BasicBlock *bb, std::set<const BasicBlock *> &seen,
          std::vector<BasicBlock *> &order)
{
    if (!seen.insert(bb).second)
        return;
    for (BasicBlock *succ : bb->successors())
        postOrder(succ, seen, order);
    order.push_back(bb);
}

} // namespace

DominatorTree::DominatorTree(const Function &fn)
{
    NOL_ASSERT(fn.hasBody(), "dominator tree of bodyless function %s",
               fn.name().c_str());

    std::set<const BasicBlock *> seen;
    std::vector<BasicBlock *> post;
    postOrder(fn.entry(), seen, post);
    rpo_.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpo_index_[rpo_[i]] = static_cast<int>(i);

    auto preds = predecessors(fn);

    // Cooper–Harvey–Kennedy iterative algorithm.
    auto intersect = [&](BasicBlock *a, BasicBlock *b) {
        while (a != b) {
            while (rpo_index_.at(a) > rpo_index_.at(b))
                a = idom_.at(a);
            while (rpo_index_.at(b) > rpo_index_.at(a))
                b = idom_.at(b);
        }
        return a;
    };

    BasicBlock *entry = fn.entry();
    idom_[entry] = entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (BasicBlock *bb : rpo_) {
            if (bb == entry)
                continue;
            BasicBlock *new_idom = nullptr;
            for (BasicBlock *pred : preds[bb]) {
                if (idom_.count(pred) == 0)
                    continue; // unreachable or not yet processed
                new_idom = new_idom == nullptr ? pred
                                               : intersect(pred, new_idom);
            }
            if (new_idom == nullptr)
                continue;
            auto it = idom_.find(bb);
            if (it == idom_.end() || it->second != new_idom) {
                idom_[bb] = new_idom;
                changed = true;
            }
        }
    }
    // Normalize: the entry has no immediate dominator.
    idom_[entry] = nullptr;
}

BasicBlock *
DominatorTree::idom(const BasicBlock *bb) const
{
    auto it = idom_.find(bb);
    return it == idom_.end() ? nullptr : it->second;
}

bool
DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    const BasicBlock *cur = b;
    while (cur != nullptr) {
        if (cur == a)
            return true;
        cur = idom(cur);
    }
    return false;
}

std::vector<NaturalLoop>
findNaturalLoops(const Function &fn)
{
    std::vector<NaturalLoop> loops;
    if (!fn.hasBody())
        return loops;

    DominatorTree dom(fn);
    auto preds = predecessors(fn);

    // Find back edges: tail -> header where header dominates tail.
    std::map<BasicBlock *, NaturalLoop> by_header;
    for (const auto &bb : fn.blocks()) {
        for (BasicBlock *succ : bb->successors()) {
            if (dom.dominates(succ, bb.get())) {
                NaturalLoop &loop = by_header[succ];
                loop.header = succ;
                loop.latches.push_back(bb.get());
            }
        }
    }

    // Loop body = header plus everything that reaches a latch without
    // passing through the header.
    for (auto &[header, loop] : by_header) {
        loop.blocks.insert(header);
        std::vector<BasicBlock *> work(loop.latches.begin(),
                                       loop.latches.end());
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            if (!loop.blocks.insert(bb).second)
                continue;
            for (BasicBlock *pred : preds[bb])
                work.push_back(pred);
        }
        for (BasicBlock *bb : loop.blocks) {
            for (BasicBlock *succ : bb->successors()) {
                if (loop.blocks.count(succ) == 0)
                    loop.exitTargets.insert(succ);
            }
        }
        loops.push_back(loop);
    }

    // Stable order: by position of header in the function.
    std::sort(loops.begin(), loops.end(),
              [&](const NaturalLoop &a, const NaturalLoop &b) {
                  return fn.blockIndex(a.header) < fn.blockIndex(b.header);
              });
    return loops;
}

} // namespace nol::ir

/**
 * @file
 * Value hierarchy of the offloading IR: constants, function arguments,
 * global variables and (indirectly) instructions. All values are owned
 * by their enclosing Module/Function/BasicBlock; plain pointers are
 * non-owning references.
 */
#ifndef NOL_IR_VALUE_HPP
#define NOL_IR_VALUE_HPP

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace nol::ir {

class Function;
class GlobalVariable;

/** Base class of everything that can appear as an instruction operand. */
class Value
{
  public:
    /** Concrete value class discriminator. */
    enum class Kind {
        Argument,
        Instruction,
        ConstInt,
        ConstFloat,
        ConstNull,
        Global,
        Function,
    };

    virtual ~Value() = default;

    Kind valueKind() const { return kind_; }
    const Type *type() const { return type_; }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    bool isConstant() const
    {
        return kind_ == Kind::ConstInt || kind_ == Kind::ConstFloat ||
               kind_ == Kind::ConstNull;
    }

  protected:
    Value(Kind kind, const Type *type, std::string name = "")
        : kind_(kind), type_(type), name_(std::move(name))
    {}

  private:
    Kind kind_;
    const Type *type_;
    std::string name_;
};

/** Formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(const Type *type, std::string name, Function *parent,
             unsigned index)
        : Value(Kind::Argument, type, std::move(name)), parent_(parent),
          index_(index)
    {}

    Function *parent() const { return parent_; }
    unsigned index() const { return index_; }

  private:
    Function *parent_;
    unsigned index_;
};

/** Integer constant (also used for i1 booleans). */
class ConstInt : public Value
{
  public:
    ConstInt(const IntType *type, int64_t value)
        : Value(Kind::ConstInt, type, ""), value_(value)
    {}

    int64_t value() const { return value_; }

    /** Value zero-extended to the type's width. */
    uint64_t
    zextValue() const
    {
        const auto *it = static_cast<const IntType *>(type());
        if (it->bits() >= 64)
            return static_cast<uint64_t>(value_);
        uint64_t mask = (1ull << it->bits()) - 1;
        return static_cast<uint64_t>(value_) & mask;
    }

  private:
    int64_t value_;
};

/** Floating-point constant. */
class ConstFloat : public Value
{
  public:
    ConstFloat(const FloatType *type, double value)
        : Value(Kind::ConstFloat, type, ""), value_(value)
    {}

    double value() const { return value_; }

  private:
    double value_;
};

/** Null pointer constant of a specific pointer type. */
class ConstNull : public Value
{
  public:
    explicit ConstNull(const PointerType *type)
        : Value(Kind::ConstNull, type, "")
    {}
};

/**
 * Static initializer of a global variable, structured so a loader can
 * serialize it under any DataLayout (the same initializer yields
 * layout-correct bytes on both architectures).
 */
struct Initializer {
    enum class Kind {
        Zero,      ///< zero-fill
        Int,       ///< scalar integer
        Float,     ///< scalar float/double
        Bytes,     ///< raw bytes (string literals), NUL included explicitly
        Global,    ///< address of another global (+ byte offset)
        Function,  ///< address of a function (function-pointer tables)
        Aggregate, ///< array elements or struct fields in order
    };

    Kind kind = Kind::Zero;
    int64_t intValue = 0;
    double floatValue = 0.0;
    std::string bytes;
    const GlobalVariable *global = nullptr;
    int64_t globalOffset = 0;
    const Function *function = nullptr;
    std::vector<Initializer> elems;

    static Initializer zero() { return {}; }

    static Initializer
    ofInt(int64_t v)
    {
        Initializer init;
        init.kind = Kind::Int;
        init.intValue = v;
        return init;
    }

    static Initializer
    ofFloat(double v)
    {
        Initializer init;
        init.kind = Kind::Float;
        init.floatValue = v;
        return init;
    }

    static Initializer
    ofBytes(std::string data)
    {
        Initializer init;
        init.kind = Kind::Bytes;
        init.bytes = std::move(data);
        return init;
    }

    static Initializer
    ofGlobal(const GlobalVariable *gv, int64_t offset = 0)
    {
        Initializer init;
        init.kind = Kind::Global;
        init.global = gv;
        init.globalOffset = offset;
        return init;
    }

    static Initializer
    ofFunction(const Function *fn)
    {
        Initializer init;
        init.kind = Kind::Function;
        init.function = fn;
        return init;
    }

    static Initializer
    aggregate(std::vector<Initializer> elems)
    {
        Initializer init;
        init.kind = Kind::Aggregate;
        init.elems = std::move(elems);
        return init;
    }
};

/**
 * Module-level variable. Its Value type is a *pointer* to the stored
 * value type (using a global as an operand yields its address, as in
 * LLVM). The memory unifier may move a global into the UVA space
 * ("referenced global variable allocation", paper Sec. 3.2).
 */
class GlobalVariable : public Value
{
  public:
    GlobalVariable(const PointerType *ptr_type, const Type *value_type,
                   std::string name, Initializer init, bool is_const)
        : Value(Kind::Global, ptr_type, std::move(name)),
          value_type_(value_type), init_(std::move(init)), is_const_(is_const)
    {}

    const Type *valueType() const { return value_type_; }
    const Initializer &init() const { return init_; }
    void setInit(Initializer init) { init_ = std::move(init); }
    bool isConst() const { return is_const_; }

    /** True once the memory unifier moved this global to UVA space. */
    bool inUva() const { return in_uva_; }
    void setInUva(bool in_uva) { in_uva_ = in_uva; }

    /**
     * Field-granular UVA provenance (field-sensitive memory
     * unification): when limited, only the listed field indices of
     * this struct global were found referenced by offloaded code.
     * Placement stays whole-object — the loader still maps the full
     * global into UVA space, so addresses are bit-identical to
     * insensitive mode — but the marks drive the verifier's
     * field-level global-not-uva check and the page accounting, and
     * partition repair widens them.
     */
    bool uvaFieldLimited() const { return uva_field_limited_; }
    const std::set<int32_t> &uvaFields() const { return uva_fields_; }

    void
    setUvaFields(std::set<int32_t> fields)
    {
        uva_fields_ = std::move(fields);
        uva_field_limited_ = true;
    }

    /** Widen the mark set (partition repair promotes one field). */
    void addUvaField(int32_t field) { uva_fields_.insert(field); }

    /** Drop field granularity (back to whole-object UVA marking). */
    void
    clearUvaFields()
    {
        uva_fields_.clear();
        uva_field_limited_ = false;
    }

  private:
    const Type *value_type_;
    Initializer init_;
    bool is_const_;
    bool in_uva_ = false;
    bool uva_field_limited_ = false;
    std::set<int32_t> uva_fields_;
};

} // namespace nol::ir

#endif // NOL_IR_VALUE_HPP

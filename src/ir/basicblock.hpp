/**
 * @file
 * Basic block: an ordered list of instructions ending in a terminator.
 * Blocks own their instructions.
 */
#ifndef NOL_IR_BASICBLOCK_HPP
#define NOL_IR_BASICBLOCK_HPP

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace nol::ir {

class Function;

/** A straight-line instruction sequence with a single terminator. */
class BasicBlock
{
  public:
    BasicBlock(std::string name, Function *parent)
        : name_(std::move(name)), parent_(parent)
    {}

    BasicBlock(const BasicBlock &) = delete;
    BasicBlock &operator=(const BasicBlock &) = delete;

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    Function *parent() const { return parent_; }
    void setParent(Function *fn) { parent_ = fn; }

    /** Instructions in execution order. */
    const std::vector<std::unique_ptr<Instruction>> &insts() const
    {
        return insts_;
    }

    bool empty() const { return insts_.empty(); }
    size_t size() const { return insts_.size(); }

    Instruction *inst(size_t idx) const { return insts_[idx].get(); }

    /** Append @p inst; sets its parent. */
    Instruction *append(std::unique_ptr<Instruction> inst);

    /** Insert @p inst before position @p idx. */
    Instruction *insertAt(size_t idx, std::unique_ptr<Instruction> inst);

    /** Remove and destroy the instruction at @p idx. */
    void erase(size_t idx);

    /** Remove the instruction at @p idx without destroying it. */
    std::unique_ptr<Instruction> take(size_t idx);

    /** Index of @p inst within this block, or -1. */
    int indexOf(const Instruction *inst) const;

    /** The terminator, or nullptr if the block is still open. */
    Instruction *terminator() const;

    /** True once the block ends in a terminator. */
    bool isTerminated() const { return terminator() != nullptr; }

    /** Successor blocks (from the terminator). */
    std::vector<BasicBlock *> successors() const;

  private:
    std::string name_;
    Function *parent_;
    std::vector<std::unique_ptr<Instruction>> insts_;
};

} // namespace nol::ir

#endif // NOL_IR_BASICBLOCK_HPP

#include "ir/basicblock.hpp"

namespace nol::ir {

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> inst)
{
    inst->setParent(this);
    insts_.push_back(std::move(inst));
    return insts_.back().get();
}

Instruction *
BasicBlock::insertAt(size_t idx, std::unique_ptr<Instruction> inst)
{
    NOL_ASSERT(idx <= insts_.size(), "insert position %zu out of range", idx);
    inst->setParent(this);
    auto it = insts_.insert(insts_.begin() + static_cast<ptrdiff_t>(idx),
                            std::move(inst));
    return it->get();
}

void
BasicBlock::erase(size_t idx)
{
    NOL_ASSERT(idx < insts_.size(), "erase position %zu out of range", idx);
    insts_.erase(insts_.begin() + static_cast<ptrdiff_t>(idx));
}

std::unique_ptr<Instruction>
BasicBlock::take(size_t idx)
{
    NOL_ASSERT(idx < insts_.size(), "take position %zu out of range", idx);
    std::unique_ptr<Instruction> inst = std::move(insts_[idx]);
    insts_.erase(insts_.begin() + static_cast<ptrdiff_t>(idx));
    inst->setParent(nullptr);
    return inst;
}

int
BasicBlock::indexOf(const Instruction *inst) const
{
    for (size_t i = 0; i < insts_.size(); ++i) {
        if (insts_[i].get() == inst)
            return static_cast<int>(i);
    }
    return -1;
}

Instruction *
BasicBlock::terminator() const
{
    if (insts_.empty())
        return nullptr;
    Instruction *last = insts_.back().get();
    return last->isTerminator() ? last : nullptr;
}

std::vector<BasicBlock *>
BasicBlock::successors() const
{
    Instruction *term = terminator();
    if (term == nullptr)
        return {};
    return term->successors();
}

} // namespace nol::ir

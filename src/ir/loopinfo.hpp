/**
 * @file
 * Dominator tree and natural-loop detection computed from the CFG.
 * The front end already records structured LoopMeta during lowering;
 * this analysis re-derives loops from first principles so transformed
 * IR (and hand-built IR in tests) can be checked against it.
 */
#ifndef NOL_IR_LOOPINFO_HPP
#define NOL_IR_LOOPINFO_HPP

#include <map>
#include <set>
#include <vector>

#include "ir/function.hpp"

namespace nol::ir {

/** One natural loop discovered from back edges. */
struct NaturalLoop {
    BasicBlock *header = nullptr;
    std::set<BasicBlock *> blocks;        ///< includes the header
    std::set<BasicBlock *> exitTargets;   ///< blocks outside, jumped to from inside
    std::vector<BasicBlock *> latches;    ///< sources of back edges
};

/** Dominator analysis over one function's CFG. */
class DominatorTree
{
  public:
    explicit DominatorTree(const Function &fn);

    /** Immediate dominator of @p bb (nullptr for the entry). */
    BasicBlock *idom(const BasicBlock *bb) const;

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /** Blocks in reverse post order. */
    const std::vector<BasicBlock *> &rpo() const { return rpo_; }

  private:
    std::map<const BasicBlock *, BasicBlock *> idom_;
    std::map<const BasicBlock *, int> rpo_index_;
    std::vector<BasicBlock *> rpo_;
};

/** Natural loops of @p fn, outermost first within each header. */
std::vector<NaturalLoop> findNaturalLoops(const Function &fn);

/** Predecessor map of @p fn's CFG. */
std::map<const BasicBlock *, std::vector<BasicBlock *>>
predecessors(const Function &fn);

} // namespace nol::ir

#endif // NOL_IR_LOOPINFO_HPP

#include "ir/instruction.hpp"

namespace nol::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Alloca: return "alloca";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::SDiv: return "sdiv";
      case Opcode::UDiv: return "udiv";
      case Opcode::SRem: return "srem";
      case Opcode::URem: return "urem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::ICmpEq: return "icmp.eq";
      case Opcode::ICmpNe: return "icmp.ne";
      case Opcode::ICmpSlt: return "icmp.slt";
      case Opcode::ICmpSle: return "icmp.sle";
      case Opcode::ICmpSgt: return "icmp.sgt";
      case Opcode::ICmpSge: return "icmp.sge";
      case Opcode::ICmpUlt: return "icmp.ult";
      case Opcode::ICmpUle: return "icmp.ule";
      case Opcode::ICmpUgt: return "icmp.ugt";
      case Opcode::ICmpUge: return "icmp.uge";
      case Opcode::FCmpEq: return "fcmp.eq";
      case Opcode::FCmpNe: return "fcmp.ne";
      case Opcode::FCmpLt: return "fcmp.lt";
      case Opcode::FCmpLe: return "fcmp.le";
      case Opcode::FCmpGt: return "fcmp.gt";
      case Opcode::FCmpGe: return "fcmp.ge";
      case Opcode::Trunc: return "trunc";
      case Opcode::ZExt: return "zext";
      case Opcode::SExt: return "sext";
      case Opcode::FPToSI: return "fptosi";
      case Opcode::SIToFP: return "sitofp";
      case Opcode::FPTrunc: return "fptrunc";
      case Opcode::FPExt: return "fpext";
      case Opcode::Bitcast: return "bitcast";
      case Opcode::PtrToInt: return "ptrtoint";
      case Opcode::IntToPtr: return "inttoptr";
      case Opcode::FieldAddr: return "fieldaddr";
      case Opcode::IndexAddr: return "indexaddr";
      case Opcode::Call: return "call";
      case Opcode::CallIndirect: return "call.indirect";
      case Opcode::Select: return "select";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Switch: return "switch";
      case Opcode::Ret: return "ret";
      case Opcode::MachineAsm: return "asm";
      case Opcode::Unreachable: return "unreachable";
    }
    return "?";
}

bool
isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Switch:
      case Opcode::Ret:
      case Opcode::Unreachable:
        return true;
      default:
        return false;
    }
}

} // namespace nol::ir

#include "ir/callgraph.hpp"

namespace nol::ir {

CallGraph::CallGraph(const Module &module) : module_(module)
{
    for (const auto &fn : module.functions())
        scanFunction(*fn);

    // Function pointers stored in global initializers (e.g. the chess
    // example's evals[] table) also escape.
    for (const auto &gv : module.globals()) {
        std::vector<const Initializer *> work{&gv->init()};
        while (!work.empty()) {
            const Initializer *init = work.back();
            work.pop_back();
            if (init->kind == Initializer::Kind::Function &&
                init->function != nullptr) {
                address_taken_.insert(const_cast<Function *>(init->function));
            }
            for (const auto &elem : init->elems)
                work.push_back(&elem);
        }
    }
}

void
CallGraph::scanFunction(Function &fn)
{
    callees_[&fn]; // ensure presence
    callers_[&fn];
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->op() == Opcode::Call) {
                Function *callee = inst->callee();
                callees_[&fn].insert(callee);
                callers_[callee].insert(&fn);
                // A function passed as an *argument* escapes.
                for (Value *op : inst->operands())
                    noteAddressTaken(op);
            } else if (inst->op() == Opcode::CallIndirect) {
                has_indirect_.insert(&fn);
                for (size_t i = 1; i < inst->numOperands(); ++i)
                    noteAddressTaken(inst->operand(i));
            } else {
                // A function used as any other operand escapes (stores
                // into fn-pointer tables etc.).
                for (Value *op : inst->operands())
                    noteAddressTaken(op);
            }
        }
    }
}

void
CallGraph::noteAddressTaken(const Value *v)
{
    if (v->valueKind() == Value::Kind::Function) {
        address_taken_.insert(
            const_cast<Function *>(static_cast<const Function *>(v)));
    }
}

const std::set<Function *> &
CallGraph::callees(const Function *fn) const
{
    auto it = callees_.find(fn);
    return it == callees_.end() ? empty_ : it->second;
}

const std::set<Function *> &
CallGraph::callers(const Function *fn) const
{
    auto it = callers_.find(fn);
    return it == callers_.end() ? empty_ : it->second;
}

bool
CallGraph::hasIndirectCall(const Function *fn) const
{
    return has_indirect_.count(fn) != 0;
}

std::set<Function *>
CallGraph::reachableFrom(const std::vector<Function *> &roots) const
{
    std::set<Function *> seen;
    std::vector<Function *> work(roots.begin(), roots.end());
    bool indirect_expanded = false;
    while (!work.empty()) {
        Function *fn = work.back();
        work.pop_back();
        if (!seen.insert(fn).second)
            continue;
        for (Function *callee : callees(fn))
            work.push_back(callee);
        if (!indirect_expanded && hasIndirectCall(fn)) {
            indirect_expanded = true;
            for (Function *target : address_taken_)
                work.push_back(target);
        }
    }
    return seen;
}

} // namespace nol::ir

#include "ir/type.hpp"

#include <sstream>

namespace nol::ir {

int
StructType::fieldIndex(const std::string &name) const
{
    for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

std::string
FunctionType::str() const
{
    std::ostringstream os;
    os << ret_->str() << " (";
    for (size_t i = 0; i < params_.size(); ++i) {
        if (i != 0)
            os << ", ";
        os << params_[i]->str();
    }
    if (variadic_) {
        if (!params_.empty())
            os << ", ";
        os << "...";
    }
    os << ")";
    return os.str();
}

TypeContext::TypeContext()
    : void_ty_(std::make_unique<VoidType>()),
      i1_(std::make_unique<IntType>(1)),
      i8_(std::make_unique<IntType>(8)),
      i16_(std::make_unique<IntType>(16)),
      i32_(std::make_unique<IntType>(32)),
      i64_(std::make_unique<IntType>(64)),
      f32_(std::make_unique<FloatType>(32)),
      f64_(std::make_unique<FloatType>(64))
{
}

const IntType *
TypeContext::intTy(uint32_t bits) const
{
    switch (bits) {
      case 1: return i1_.get();
      case 8: return i8_.get();
      case 16: return i16_.get();
      case 32: return i32_.get();
      case 64: return i64_.get();
      default: panic("unsupported integer width %u", bits);
    }
}

const PointerType *
TypeContext::pointerTo(const Type *pointee)
{
    auto it = pointers_.find(pointee);
    if (it != pointers_.end())
        return it->second.get();
    auto ptr = std::make_unique<PointerType>(pointee);
    const PointerType *raw = ptr.get();
    pointers_.emplace(pointee, std::move(ptr));
    return raw;
}

const ArrayType *
TypeContext::arrayOf(const Type *element, uint64_t count)
{
    auto key = std::make_pair(element, count);
    auto it = arrays_.find(key);
    if (it != arrays_.end())
        return it->second.get();
    auto arr = std::make_unique<ArrayType>(element, count);
    const ArrayType *raw = arr.get();
    arrays_.emplace(key, std::move(arr));
    return raw;
}

const FunctionType *
TypeContext::functionTy(const Type *ret, std::vector<const Type *> params,
                        bool variadic)
{
    // Function types are rare enough that a linear uniquing scan is fine.
    for (const auto &fn_ty : fn_types_) {
        if (fn_ty->returnType() == ret && fn_ty->params() == params &&
            fn_ty->isVariadic() == variadic) {
            return fn_ty.get();
        }
    }
    fn_types_.push_back(
        std::make_unique<FunctionType>(ret, std::move(params), variadic));
    return fn_types_.back().get();
}

StructType *
TypeContext::createStruct(const std::string &name,
                          std::vector<StructType::Field> fields)
{
    NOL_ASSERT(structs_.count(name) == 0, "duplicate struct %s", name.c_str());
    auto st = std::make_unique<StructType>(name, std::move(fields));
    StructType *raw = st.get();
    structs_.emplace(name, std::move(st));
    struct_order_.push_back(raw);
    return raw;
}

StructType *
TypeContext::structByName(const std::string &name) const
{
    auto it = structs_.find(name);
    return it == structs_.end() ? nullptr : it->second.get();
}

} // namespace nol::ir

#include "ir/cfgutils.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace nol::ir {

void
removeUnreachableBlocks(Function &fn)
{
    if (!fn.hasBody())
        return;

    std::set<BasicBlock *> reachable;
    std::vector<BasicBlock *> work{fn.entry()};
    while (!work.empty()) {
        BasicBlock *bb = work.back();
        work.pop_back();
        if (!reachable.insert(bb).second)
            continue;
        for (BasicBlock *succ : bb->successors())
            work.push_back(succ);
    }

    std::vector<BasicBlock *> dead;
    for (const auto &bb : fn.blocks()) {
        if (reachable.count(bb.get()) == 0)
            dead.push_back(bb.get());
    }
    for (BasicBlock *bb : dead)
        fn.removeBlock(bb); // unique_ptr destroyed on return

    // Repair loop metadata.
    auto &loops = fn.loops();
    loops.erase(std::remove_if(loops.begin(), loops.end(),
                               [&](const LoopMeta &meta) {
                                   return reachable.count(meta.header) == 0;
                               }),
                loops.end());
    for (LoopMeta &meta : loops) {
        meta.blocks.erase(
            std::remove_if(meta.blocks.begin(), meta.blocks.end(),
                           [&](BasicBlock *bb) {
                               return reachable.count(bb) == 0;
                           }),
            meta.blocks.end());
        if (meta.exit != nullptr && reachable.count(meta.exit) == 0)
            meta.exit = nullptr;
        if (meta.preheader != nullptr &&
            reachable.count(meta.preheader) == 0) {
            meta.preheader = nullptr;
        }
    }
}

} // namespace nol::ir

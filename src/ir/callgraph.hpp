/**
 * @file
 * Call graph over a module: direct call edges plus a conservative
 * "address taken" set for indirect calls. Used by the function filter
 * (machine-specific taint propagates up the graph), the partitioner's
 * unused-function removal, and the referenced-global analysis.
 */
#ifndef NOL_IR_CALLGRAPH_HPP
#define NOL_IR_CALLGRAPH_HPP

#include <map>
#include <set>
#include <vector>

#include "ir/module.hpp"

namespace nol::ir {

/** Immutable call graph snapshot of one module. */
class CallGraph
{
  public:
    explicit CallGraph(const Module &module);

    /** Functions directly called by @p fn. */
    const std::set<Function *> &callees(const Function *fn) const;

    /** Functions that directly call @p fn. */
    const std::set<Function *> &callers(const Function *fn) const;

    /** True if @p fn contains any indirect call. */
    bool hasIndirectCall(const Function *fn) const;

    /** Functions whose address escapes (possible indirect-call targets). */
    const std::set<Function *> &addressTaken() const { return address_taken_; }

    /**
     * Functions reachable from @p roots via direct calls; if any
     * reachable function makes an indirect call, all address-taken
     * functions (and their reachable sets) are included too.
     */
    std::set<Function *> reachableFrom(const std::vector<Function *> &roots) const;

  private:
    void scanFunction(Function &fn);
    void noteAddressTaken(const Value *v);

    const Module &module_;
    std::map<const Function *, std::set<Function *>> callees_;
    std::map<const Function *, std::set<Function *>> callers_;
    std::set<const Function *> has_indirect_;
    std::set<Function *> address_taken_;
    std::set<Function *> empty_;
};

} // namespace nol::ir

#endif // NOL_IR_CALLGRAPH_HPP
